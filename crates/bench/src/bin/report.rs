//! Prints the paper-vs-measured table for every experiment (or a
//! selected subset named on the command line), optionally fanning the
//! experiments out over worker threads, and writes a machine-readable
//! `BENCH_sim.json` next to the report.
//!
//! Usage:
//!
//! ```text
//! report [--list] [--jobs N] [--shards N] [--json PATH] [--metrics]
//!        [--doctor] [--compare BASELINE] [--trace EXP] [--trace-out PATH]
//!        [ids... | all]
//! ```
//!
//! `--metrics` harvests every experiment's counters and latency
//! histograms into the `metrics` object of `BENCH_sim.json`.
//! `--trace EXP` records the flight recorder while experiment `EXP`
//! runs and writes a Chrome trace-event file (load it in Perfetto or
//! `chrome://tracing`) to `--trace-out`, default `trace_<EXP>.json`.
//! `--doctor` runs `nectar-doctor` over every selected experiment that
//! supports tracing: a per-segment "where did the time go" table plus
//! pathology findings (see `docs/observability.md`).
//! `--compare BASELINE` diffs this run's metrics against a committed
//! baseline (`BENCH_baseline.json`) and exits non-zero on regression —
//! the CI perf gate. Implies `--metrics`.
//! `--chaos-seed N [--chaos-spec 'PROG']` replays one exact fault
//! schedule through the chaos experiments (e25 family) — the flags a
//! failing campaign test prints. Without `--chaos-spec` the schedule
//! is regenerated from the seed.
//! `--shards N` runs the conservative-parallel experiments (the e26
//! scale family) with the simulated world split across `N` shard
//! threads (see DESIGN.md §11); other experiments ignore it.
//! `--repeat N` runs every selected experiment `N` times: the reported
//! wall time is the median, and the harness asserts the simulated
//! metrics are identical across repeats (wall-clock may jitter;
//! simulated results may not).
//! `--scaling` additionally measures the speedup curve — the e26
//! topologies, clean and under chaos, at a sweep of shard counts, each
//! point bit-compared against its 1-shard reference — and records it
//! as the `scaling` array of `BENCH_sim.json` together with the host
//! description (`docs/parallel.md`, "Measuring the speedup curve").
//! `--profile` turns on the host-time profiler for every sharded world
//! (`docs/parallel.md`, "Reading the host-time profile"): per-shard
//! phase breakdowns, parallel efficiency, the Karp–Flatt serial
//! fraction, and the scaling doctor's ranked bottleneck verdict, per
//! experiment and (with `--scaling`) per speedup-curve point. Purely
//! observational: the determinism diffs prove the simulated metrics
//! are bit-identical with it on or off. Combined with `--trace` on an
//! e26 experiment, the Chrome trace gains host-time tracks next to the
//! simulated ones.
//!
//! Every experiment builds its own world, so they are embarrassingly
//! parallel: with `--jobs N` the registry is drained by `N` scoped
//! worker threads claiming indices from an atomic counter. Output
//! stays deterministic — each worker renders its table (which can be
//! sizable under `--metrics`) to a string off the lock, and the main
//! thread flushes everything once, in registry order, through a single
//! locked stdout regardless of completion order.

use nectar_bench::experiments::{ExpCtx, Experiment, TRACEABLE};
use nectar_bench::registry;
use nectar_bench::table::Table;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Outcome {
    id: &'static str,
    table: Table,
    /// The table pre-rendered in the worker thread: rendering touches
    /// every row and metric, so under `--jobs` it happens off the main
    /// thread and the flush is a single buffered write.
    rendered: String,
    /// Median wall time across repeats.
    wall: Duration,
    /// Every repeat's wall time, in run order — `--repeat N` jitter
    /// lands in the JSON host object, not just the median.
    walls: Vec<Duration>,
}

fn usage() -> ! {
    eprintln!(
        "usage: report [--list] [--jobs N] [--shards N] [--repeat N] \
         [--scaling] [--profile] [--json PATH] [--metrics] [--doctor] \
         [--stream] [--telemetry-cap N] [--stream-budget BYTES] \
         [--compare BASELINE] [--trace EXP] [--trace-out PATH] \
         [--chaos-seed N] [--chaos-spec PROG] [--workload SPEC|PRESET] \
         [ids... | all]"
    );
    std::process::exit(2);
}

/// Exits non-zero with a message naming the offending flag/token —
/// a malformed invocation must never be silently reinterpreted.
fn bad_invocation(msg: &str) -> ! {
    eprintln!("report: {msg}");
    std::process::exit(2);
}

/// The value following `flag`, or a non-zero exit naming the flag.
fn flag_value(flag: &str, args: &mut impl Iterator<Item = String>) -> String {
    args.next().unwrap_or_else(|| bad_invocation(&format!("{flag} requires a value")))
}

/// Parses `flag`'s value, or exits non-zero naming the bad token.
fn parse_flag<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| bad_invocation(&format!("invalid value `{value}` for {flag}")))
}

/// Parses `flag`'s value and rejects zero — these are counts where
/// zero means "run nothing", which is never what the caller wanted.
fn parse_positive(flag: &str, value: &str) -> usize {
    let n: usize = parse_flag(flag, value);
    if n == 0 {
        bad_invocation(&format!("{flag} must be at least 1, got `{value}`"));
    }
    n
}

fn main() {
    let mut jobs: usize = 1;
    let mut shards: usize = 1;
    let mut repeat: usize = 1;
    let mut scaling = false;
    let mut profile = false;
    let mut json_path = String::from("BENCH_sim.json");
    let mut ids: Vec<String> = Vec::new();
    let mut list = false;
    let mut metrics = false;
    let mut doctor = false;
    let mut stream = false;
    let mut telemetry_cap: Option<usize> = None;
    let mut stream_budget: Option<usize> = None;
    let mut compare_path: Option<String> = None;
    let mut trace_id: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_spec: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--chaos-seed" => {
                let v = flag_value("--chaos-seed", &mut args);
                chaos_seed = Some(parse_flag("--chaos-seed", &v));
            }
            "--chaos-spec" => {
                let v = flag_value("--chaos-spec", &mut args);
                // Validate the grammar now (the seed does not affect
                // parsing) so a typo fails before any experiment runs.
                if let Err(e) = nectar_sim::chaos::ChaosSchedule::parse(0, &v) {
                    bad_invocation(&format!("--chaos-spec `{v}`: {e}"));
                }
                chaos_spec = Some(v);
            }
            "--workload" => {
                let v = flag_value("--workload", &mut args);
                if nectar_sim::workload::preset(&v).is_none() {
                    if let Err(e) = nectar_sim::workload::WorkloadSpec::parse(0, &v) {
                        bad_invocation(&format!(
                            "--workload `{v}` is neither a registered preset nor a \
                             parsable spec: {e}"
                        ));
                    }
                }
                workload = Some(v);
            }
            "--list" | "list" => list = true,
            "--jobs" | "-j" => jobs = parse_positive("--jobs", &flag_value("--jobs", &mut args)),
            "--shards" => shards = parse_positive("--shards", &flag_value("--shards", &mut args)),
            "--repeat" => repeat = parse_positive("--repeat", &flag_value("--repeat", &mut args)),
            "--scaling" => scaling = true,
            "--profile" => profile = true,
            "--json" => json_path = flag_value("--json", &mut args),
            "--metrics" => metrics = true,
            "--doctor" => doctor = true,
            "--stream" => stream = true,
            "--telemetry-cap" => {
                let v = flag_value("--telemetry-cap", &mut args);
                telemetry_cap = Some(parse_positive("--telemetry-cap", &v));
            }
            "--stream-budget" => {
                let v = flag_value("--stream-budget", &mut args);
                stream_budget = Some(parse_flag("--stream-budget", &v));
            }
            "--compare" => compare_path = Some(flag_value("--compare", &mut args)),
            "--trace" => trace_id = Some(flag_value("--trace", &mut args).to_lowercase()),
            "--trace-out" => trace_out = Some(flag_value("--trace-out", &mut args)),
            other if other.starts_with('-') => {
                eprintln!("report: unknown flag `{other}`");
                usage()
            }
            other => ids.push(other.to_lowercase()),
        }
    }
    // All analysis modes need the data they analyze (the streaming
    // doctor's mailbox detector reads the metrics registry).
    if doctor || stream || compare_path.is_some() {
        metrics = true;
    }
    let reg = registry();
    if list {
        for (id, desc, _) in &reg {
            println!("{id:>5}  {desc}");
        }
        return;
    }
    let selected: Vec<_> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        reg
    } else {
        // Every named id must exist: a typo that silently shrinks the
        // selection would report success over the wrong experiments.
        let unknown: Vec<&String> =
            ids.iter().filter(|a| !reg.iter().any(|(id, _, _)| *id == a.as_str())).collect();
        if !unknown.is_empty() {
            for a in &unknown {
                eprintln!("report: unknown experiment id `{a}`");
            }
            eprintln!("try --list for the registry");
            std::process::exit(1);
        }
        reg.into_iter().filter(|(id, _, _)| ids.contains(&id.to_string())).collect()
    };
    println!("Nectar reproduction — experiment report");
    println!("(shape reproduction: simulator seeded with the paper's constants)\n");

    if let Some(tid) = &trace_id {
        if !selected.iter().any(|(id, _, _)| id == tid) {
            eprintln!("--trace {tid} names an experiment outside the selection; try --list");
            std::process::exit(1);
        }
    }
    let base_ctx = ExpCtx {
        metrics,
        trace: false,
        chaos_seed,
        chaos_spec,
        workload,
        shards,
        stream,
        telemetry_cap,
        stream_budget,
        profile,
    };
    let results = run_experiments(&selected, jobs, repeat, &base_ctx, doctor, trace_id.as_deref());
    {
        // One write per run: the tables were rendered in the workers,
        // so the flush never interleaves with anything.
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        for r in &results {
            writeln!(out, "{}", r.rendered).expect("stdout write");
        }
    }
    if stream {
        print_stream(&results);
    }
    if doctor {
        print_doctor(&results);
    }
    if profile {
        print_profile(&results);
    }
    if let Some(tid) = &trace_id {
        let r = results.iter().find(|r| r.id == tid).expect("traced experiment ran");
        let path = trace_out.unwrap_or_else(|| format!("trace_{tid}.json"));
        // With --profile, the traced experiment's host-time spans ride
        // along as extra tracks in the same trace file.
        let trace = nectar_sim::export::chrome_trace_with_host(
            &r.table.trace,
            r.table.host_profile.as_ref(),
        );
        match std::fs::write(&path, &trace) {
            Ok(()) => eprintln!(
                "wrote {path} ({} telemetry events{})",
                r.table.trace.len(),
                if r.table.host_profile.is_some() { ", with host-time tracks" } else { "" }
            ),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    let points = if scaling {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let sweep =
            nectar_bench::experiments::scale::scaling_sweep(&[1, 2, 4, shards, cores], profile);
        print_scaling(&sweep);
        sweep
    } else {
        Vec::new()
    };
    let json = render_json(&results, jobs, shards, repeat, &points);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path} ({} experiments)", results.len()),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
    if let Some(baseline_path) = compare_path {
        if !run_compare(&baseline_path, &json) {
            std::process::exit(1);
        }
    }
}

/// Formats an experiment's runtime registry (runner counters, ring
/// pressure) as one line — kept visually apart from the bit-compared
/// metrics. `None` when the registry is absent or empty.
fn runtime_line(runtime: Option<&nectar_sim::metrics::MetricsRegistry>) -> Option<String> {
    let rt = runtime?;
    let counters: Vec<String> = rt.counters().map(|(k, v)| format!("{k}={v}")).collect();
    let gauges: Vec<String> = rt.gauges().map(|(k, v)| format!("{k}={v:.0}")).collect();
    if counters.is_empty() && gauges.is_empty() {
        return None;
    }
    Some(format!("  runtime (not bit-compared): {}", [gauges, counters].concat().join(" ")))
}

/// Prints [`runtime_line`] when there is anything to print.
fn print_runtime(runtime: Option<&nectar_sim::metrics::MetricsRegistry>) {
    if let Some(line) = runtime_line(runtime) {
        println!("{line}");
    }
}

/// Prints the host-time profile and the scaling doctor's verdict for
/// every experiment that drove a sharded world under `--profile`.
/// Experiments that never shard have no host profile and are listed as
/// such rather than silently skipped.
fn print_profile(results: &[Outcome]) {
    println!("host-time profile — where the wall-clock went");
    println!("=============================================");
    for r in results {
        let Some(p) = &r.table.profile else { continue };
        println!("\n{} — {} shards, {} windows", r.id, p.shards, p.windows);
        print!("{}", p.render());
    }
    let skipped: Vec<&str> =
        results.iter().filter(|r| r.table.profile.is_none()).map(|r| r.id).collect();
    if !skipped.is_empty() {
        println!("\n(no sharded run to profile for: {})", skipped.join(", "));
    }
    println!();
}

/// Prints the streaming doctor's verdicts: one block per experiment
/// that streamed, with the fold summary ahead of the findings.
fn print_stream(results: &[Outcome]) {
    println!("nectar-doctor --stream — incremental bounded-memory analysis");
    println!("============================================================");
    for r in results {
        let Some(s) = &r.table.stream else { continue };
        let sm = &s.summary;
        println!(
            "\n{} — {} events folded, {} flights ({} retired, {} open at capture end)",
            r.id, sm.events_folded, sm.flights_seen, sm.flights_retired, sm.open_flights
        );
        println!(
            "  fold: peak {} bytes, {} checkpoints, {} forced retirements, {} late events",
            sm.peak_mem_bytes, sm.checkpoints, sm.forced_retirements, sm.late_events
        );
        println!(
            "  rings: high-water mark {} of capacity, {} dropped{}",
            sm.ring_hwm,
            sm.ring_dropped,
            if s.confident { "" } else { " — NOT CONFIDENT" }
        );
        print_runtime(r.table.runtime.as_ref());
        print!("{}", s.rendered);
    }
    let skipped: Vec<&str> =
        results.iter().filter(|r| r.table.stream.is_none()).map(|r| r.id).collect();
    if !skipped.is_empty() {
        println!("\n(no streaming capture for: {})", skipped.join(", "));
    }
    println!();
}

/// Prints the doctor report for every selected experiment that captures
/// telemetry. Experiments outside [`TRACEABLE`] have no event stream to
/// analyze and are listed as such rather than silently skipped.
fn print_doctor(results: &[Outcome]) {
    println!("nectar-doctor — critical path and pathologies");
    println!("=============================================");
    for r in results {
        if !TRACEABLE.contains(&r.id) {
            continue;
        }
        if r.table.stream.is_some() {
            println!("\n{} — streamed (see the --stream section above)", r.id);
            continue;
        }
        println!("\n{} — {} telemetry events", r.id, r.table.trace.len());
        let report = nectar_sim::analysis::diagnose(&r.table.trace, r.table.metrics.as_ref());
        print!("{}", report.render());
        print_runtime(r.table.runtime.as_ref());
    }
    let skipped: Vec<&str> =
        results.iter().map(|r| r.id).filter(|id| !TRACEABLE.contains(id)).collect();
    if !skipped.is_empty() {
        println!("\n(no telemetry capture for: {})", skipped.join(", "));
    }
    println!();
}

/// Diffs this run's metrics JSON against the committed baseline.
/// Returns `false` (gate failed) on regression or unreadable input.
fn run_compare(baseline_path: &str, current_json: &str) -> bool {
    use nectar_sim::analysis::compare::{compare, CompareConfig};
    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let baseline = match nectar_sim::json::parse(&baseline_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("baseline {baseline_path} is not valid JSON: {e:?}");
            return false;
        }
    };
    let current = nectar_sim::json::parse(current_json).expect("render_json emits valid JSON");
    match compare(&baseline, &current, &CompareConfig::default()) {
        Ok(report) => {
            println!("perf gate vs {baseline_path}");
            print!("{}", report.render());
            report.passed()
        }
        Err(e) => {
            eprintln!("compare failed: {e}");
            false
        }
    }
}

/// Runs every selected experiment, on `jobs` worker threads when asked,
/// and returns the outcomes in registry order. With `repeat > 1` each
/// experiment runs that many times: the reported wall time is the
/// median, and the simulated observables (events, metrics registry)
/// are asserted identical across repeats — the determinism contract
/// applied to the harness itself.
fn run_experiments(
    selected: &[Experiment],
    jobs: usize,
    repeat: usize,
    base_ctx: &ExpCtx,
    doctor: bool,
    trace_id: Option<&str>,
) -> Vec<Outcome> {
    let ctx_for = |id: &str| ExpCtx {
        trace: trace_id == Some(id) || (doctor && TRACEABLE.contains(&id)),
        ..base_ctx.clone()
    };
    let execute = |id: &'static str, run: fn(&ExpCtx) -> Table| {
        let mut walls = Vec::with_capacity(repeat);
        let mut table: Option<Table> = None;
        for _ in 0..repeat {
            let t0 = Instant::now();
            let t = run(&ctx_for(id));
            walls.push(t0.elapsed());
            if let Some(prev) = &table {
                assert_eq!(
                    prev.events, t.events,
                    "{id}: event count changed between repeats — nondeterministic experiment"
                );
                let fp = |m: &Option<nectar_sim::metrics::MetricsRegistry>| {
                    m.as_ref().map(|m| m.to_json())
                };
                assert_eq!(
                    fp(&prev.metrics),
                    fp(&t.metrics),
                    "{id}: metrics changed between repeats — nondeterministic experiment"
                );
            }
            table = Some(t);
        }
        let mut sorted = walls.clone();
        sorted.sort_unstable();
        let wall = sorted[sorted.len() / 2];
        let table = table.expect("repeat >= 1");
        // Render while still on the worker: Display walks every row,
        // note, and (under --metrics) histogram, and the result is the
        // only thing main has to push through the stdout lock.
        let mut rendered = table.to_string();
        if let Some(line) = runtime_line(table.runtime.as_ref()) {
            rendered.push_str(&line);
            rendered.push('\n');
        }
        Outcome { id, table, rendered, wall, walls }
    };
    if jobs <= 1 || selected.len() <= 1 {
        return selected.iter().map(|&(id, _, run)| execute(id, run)).collect();
    }
    let slots: Mutex<Vec<Option<Outcome>>> =
        Mutex::new((0..selected.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(selected.len()) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(id, _, run)) = selected.get(idx) else { break };
                let outcome = execute(id, run);
                slots.lock().expect("no worker panicked holding the lock")[idx] = Some(outcome);
            });
        }
    });
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|o| o.expect("every slot filled by a worker"))
        .collect()
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// CPUs online on the host (as opposed to CPUs this process may use).
/// Linux-only; elsewhere falls back to the usable count.
fn cpus_online(usable: usize) -> usize {
    std::fs::read_to_string("/sys/devices/system/cpu/online")
        .ok()
        .and_then(|s| {
            // "0-3,5,7-8" → 6
            let mut n = 0usize;
            for part in s.trim().split(',') {
                match part.split_once('-') {
                    Some((a, b)) => {
                        let (a, b) = (a.parse::<usize>().ok()?, b.parse::<usize>().ok()?);
                        n += b.checked_sub(a)? + 1;
                    }
                    None => {
                        part.parse::<usize>().ok()?;
                        n += 1;
                    }
                }
            }
            Some(n)
        })
        .unwrap_or(usable)
}

/// The `host` member of `BENCH_sim.json`: the structured facts a later
/// `--compare` needs to decide whether wall-clock numbers from this
/// run are comparable at all. `cores` is what the process may actually
/// use (affinity-aware); `pinned` records whether that is fewer than
/// the machine has online. Under `--repeat N` the object also carries
/// `walls_ms` — every repeat's wall time per experiment, in run order,
/// so the jitter behind the reported median is inspectable.
fn host_json(repeat: usize, results: &[Outcome]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let online = cpus_online(cores);
    let walls = if repeat > 1 {
        let per_exp: Vec<String> = results
            .iter()
            .map(|r| {
                let ms: Vec<String> =
                    r.walls.iter().map(|w| format!("{:.3}", w.as_secs_f64() * 1e3)).collect();
                format!("\"{}\": [{}]", json_escape(r.id), ms.join(", "))
            })
            .collect();
        format!(", \"walls_ms\": {{{}}}", per_exp.join(", "))
    } else {
        String::new()
    };
    format!(
        "{{\"cores\": {cores}, \"online\": {online}, \"pinned\": {}, \"repeat\": {repeat}{walls}}}",
        cores < online
    )
}

/// Prints the speedup curve as a table on stdout. When the sweep was
/// profiled, every point also shows its parallel efficiency, Karp–Flatt
/// serial fraction, and the scaling doctor's primary verdict.
fn print_scaling(points: &[nectar_bench::experiments::scale::ScalingPoint]) {
    println!("speedup curve (per point vs its 1-shard reference)");
    let profiled = points.iter().any(|p| p.profile.is_some());
    println!(
        "{:<6} {:<18} {:>6} {:>6} {:>10} {:>9} {:>8} {:>11} {:>9}  deterministic{}",
        "exp",
        "topology",
        "shards",
        "chaos",
        "events",
        "wall",
        "speedup",
        "barrier",
        "exchanged",
        if profiled { "  eff    kf     verdict" } else { "" },
    );
    for p in points {
        let reference = points
            .iter()
            .find(|r| r.experiment == p.experiment && r.chaos == p.chaos && r.shards == 1)
            .expect("sweep always includes the 1-shard reference");
        let attribution = match &p.profile {
            Some(a) => format!(
                "  {:>5.2} {:>6.3} {}",
                a.efficiency,
                a.karp_flatt,
                a.primary().kind.label(),
            ),
            None => String::new(),
        };
        println!(
            "{:<6} {:<18} {:>6} {:>6} {:>10} {:>8.1}ms {:>7.2}x {:>9.1}ms {:>9}  {}{}",
            p.experiment,
            p.topology,
            p.shards,
            p.chaos,
            p.events,
            p.wall_s * 1e3,
            reference.wall_s / p.wall_s.max(1e-9),
            p.barrier_wait_ns as f64 / 1e6,
            p.exchanged_events,
            if p.deterministic { "yes" } else { "NO — DETERMINISM VIOLATED" },
            attribution,
        );
    }
    println!();
}

/// Renders the per-experiment results as `BENCH_sim.json`: wall time,
/// events processed, events/sec, and table notes (the e26 speedup and
/// determinism verdicts live there) for every experiment plus totals,
/// the structured host description, and (under `--scaling`) the
/// measured speedup curve.
fn render_json(
    results: &[Outcome],
    jobs: usize,
    shards: usize,
    repeat: usize,
    scaling: &[nectar_bench::experiments::scale::ScalingPoint],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str(&format!("  \"host\": {},\n", host_json(repeat, results)));
    let total_events: u64 = results.iter().map(|r| r.table.events).sum();
    let total_wall: f64 = results.iter().map(|r| r.wall.as_secs_f64()).sum();
    s.push_str(&format!("  \"total_events\": {total_events},\n"));
    s.push_str(&format!("  \"total_wall_ms\": {:.3},\n", total_wall * 1e3));
    s.push_str("  \"experiments\": [\n");
    for (i, r) in results.iter().enumerate() {
        let wall_s = r.wall.as_secs_f64();
        let eps = if wall_s > 0.0 { r.table.events as f64 / wall_s } else { 0.0 };
        let metrics = match &r.table.metrics {
            Some(m) => format!(", \"metrics\": {}", m.to_json()),
            None => String::new(),
        };
        // Runner counters and ring pressure: a sibling of "metrics",
        // never inside it, because "metrics" is the bit-compared
        // determinism fingerprint and these describe the harness.
        let runtime = match &r.table.runtime {
            Some(rt) if !rt.is_empty() => format!(", \"runtime\": {}", rt.to_json()),
            _ => String::new(),
        };
        // Host-time profile: like "runtime", a sibling of "metrics",
        // because host wall-clock is never part of the fingerprint.
        let profile = match &r.table.profile {
            Some(p) => format!(", \"profile\": {}", p.to_json()),
            None => String::new(),
        };
        let stream = match &r.table.stream {
            Some(s) => {
                let sm = &s.summary;
                // The typed doctor verdicts ride inside the stream
                // object: one entry per finding, so CI can gate on
                // detector/severity without parsing rendered text.
                let verdicts: Vec<String> = s
                    .findings
                    .iter()
                    .map(|f| {
                        format!(
                            "{{\"detector\": \"{}\", \"severity\": \"{}\", \
                             \"subject\": \"{}\", \"confident\": {}}}",
                            json_escape(f.detector),
                            f.severity,
                            json_escape(&f.subject),
                            f.confident,
                        )
                    })
                    .collect();
                format!(
                    ", \"stream\": {{\"events_folded\": {}, \"flights_seen\": {}, \
                     \"flights_retired\": {}, \"open_flights\": {}, \"late_events\": {}, \
                     \"forced_retirements\": {}, \"checkpoints\": {}, \"peak_mem_bytes\": {}, \
                     \"ring_hwm\": {}, \"ring_dropped\": {}, \"flights\": {}, \"confident\": {}, \
                     \"verdicts\": [{}]}}",
                    sm.events_folded,
                    sm.flights_seen,
                    sm.flights_retired,
                    sm.open_flights,
                    sm.late_events,
                    sm.forced_retirements,
                    sm.checkpoints,
                    sm.peak_mem_bytes,
                    sm.ring_hwm,
                    sm.ring_dropped,
                    s.flights,
                    s.confident,
                    verdicts.join(", "),
                )
            }
            None => String::new(),
        };
        let notes = if r.table.notes.is_empty() {
            String::new()
        } else {
            let quoted: Vec<String> =
                r.table.notes.iter().map(|n| format!("\"{}\"", json_escape(n))).collect();
            format!(", \"notes\": [{}]", quoted.join(", "))
        };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"title\": \"{}\", \"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}{}{}{}{}{}}}{}\n",
            json_escape(r.id),
            json_escape(&r.table.title),
            wall_s * 1e3,
            r.table.events,
            eps,
            notes,
            metrics,
            runtime,
            profile,
            stream,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]");
    if !scaling.is_empty() {
        s.push_str(",\n  \"scaling\": [\n");
        for (i, p) in scaling.iter().enumerate() {
            let eps = if p.wall_s > 0.0 { p.events as f64 / p.wall_s } else { 0.0 };
            let profile = match &p.profile {
                Some(a) => format!(", \"profile\": {}", a.to_json()),
                None => String::new(),
            };
            s.push_str(&format!(
                "    {{\"experiment\": \"{}\", \"topology\": \"{}\", \"shards\": {}, \
                 \"chaos\": {}, \"events\": {}, \"wall_ms\": {:.3}, \
                 \"events_per_sec\": {eps:.0}, \"windows\": {}, \"barrier_wait_ns\": {}, \
                 \"exchanged_events\": {}, \"deterministic\": {}{}}}{}\n",
                json_escape(p.experiment),
                json_escape(p.topology),
                p.shards,
                p.chaos,
                p.events,
                p.wall_s * 1e3,
                p.windows,
                p.barrier_wait_ns,
                p.exchanged_events,
                p.deterministic,
                profile,
                if i + 1 < scaling.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]");
    }
    s.push_str("\n}\n");
    s
}
