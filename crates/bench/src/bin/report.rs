//! Prints the paper-vs-measured table for every experiment (or a
//! selected subset named on the command line).

use nectar_bench::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let reg = registry();
    if args.iter().any(|a| a == "--list" || a == "list") {
        for (id, desc, _) in &reg {
            println!("{id:>5}  {desc}");
        }
        return;
    }
    let selected: Vec<_> = if args.is_empty() || args.iter().any(|a| a == "all") {
        reg
    } else {
        let picked: Vec<_> = reg.into_iter().filter(|(id, _, _)| args.contains(&id.to_string())).collect();
        if picked.is_empty() {
            eprintln!("no experiment matches {args:?}; try --list");
            std::process::exit(1);
        }
        picked
    };
    println!("Nectar reproduction — experiment report");
    println!("(shape reproduction: simulator seeded with the paper's constants)\n");
    for (_, _, run) in selected {
        println!("{}", run());
    }
}
