//! Validates the harness's machine-readable exports: `BENCH_sim.json`
//! (with `--expect-metrics`, every experiment must carry a metrics
//! object) and a Chrome trace-event file from `report --trace`.
//!
//! ```text
//! check_export --bench BENCH_sim.json [--expect-metrics]
//!              [--trace trace.json] [--expect-host]
//! ```
//!
//! `--expect-host` additionally requires the trace to carry host-time
//! tracks (from `report --profile --trace`): complete slices on the
//! host process group whose names are profiler phase labels.
//!
//! Exits non-zero with a diagnostic on the first violation; CI runs it
//! after the bench smoke to keep the export formats honest.

use nectar_sim::json::{parse, Json};

fn usage() -> ! {
    eprintln!("usage: check_export --bench PATH [--expect-metrics] [--trace PATH] [--expect-host]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("check_export: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")))
}

fn check_bench(path: &str, expect_metrics: bool) {
    let v = load(path);
    let exps = v
        .get("experiments")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail(&format!("{path}: no \"experiments\" array")));
    if exps.is_empty() {
        fail(&format!("{path}: empty experiments array"));
    }
    for e in exps {
        let id = e
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("{path}: experiment without an id")));
        for field in ["wall_ms", "events", "events_per_sec"] {
            if e.get(field).and_then(Json::as_f64).is_none() {
                fail(&format!("{path}: experiment {id} missing numeric {field}"));
            }
        }
        if expect_metrics {
            let m = e
                .get("metrics")
                .unwrap_or_else(|| fail(&format!("{path}: experiment {id} has no metrics")));
            if m.get("counters").and_then(Json::as_object).is_none() {
                fail(&format!("{path}: experiment {id} metrics lack counters"));
            }
            if let Some(hists) = m.get("histograms").and_then(Json::as_object) {
                for (name, h) in hists {
                    for q in ["p50", "p99"] {
                        if h.get(q).and_then(Json::as_f64).is_none() {
                            fail(&format!("{path}: histogram {name} in {id} missing {q}"));
                        }
                    }
                }
            }
        }
    }
    println!("check_export: {path} ok ({} experiments)", exps.len());
}

fn check_trace(path: &str, expect_host: bool) {
    let v = load(path);
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail(&format!("{path}: no \"traceEvents\" array")));
    if events.is_empty() {
        fail(&format!("{path}: empty trace — was the experiment instrumented?"));
    }
    let host_pid = f64::from(nectar_sim::export::HOST_PID);
    let phase_labels: Vec<&str> =
        nectar_sim::profile::Phase::ALL.iter().map(|p| p.label()).collect();
    let mut hub_pids = std::collections::BTreeSet::new();
    let mut host_tids = std::collections::BTreeSet::new();
    let mut host_slices = 0u64;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("{path}: event {i} has no ph")));
        let pid = e
            .get("pid")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(&format!("{path}: event {i} has no pid")));
        // Metadata events carry no timestamp; everything else must.
        if ph != "M" && e.get("ts").and_then(Json::as_f64).is_none() {
            fail(&format!("{path}: event {i} (ph={ph}) has no ts"));
        }
        // Crossbar slices live on HUB process tracks (pid 1..=255).
        if ph == "X" && (1.0..1000.0).contains(&pid) {
            hub_pids.insert(pid as u64);
        }
        // Host-time slices live on the host process group and must be
        // named after profiler phases.
        if ph == "X" && pid >= host_pid {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail(&format!("{path}: host slice {i} has no name")));
            if !phase_labels.contains(&name) {
                fail(&format!("{path}: host slice {i} has unknown phase name {name:?}"));
            }
            if e.get("dur").and_then(Json::as_f64).is_none() {
                fail(&format!("{path}: host slice {i} has no dur"));
            }
            if let Some(tid) = e.get("tid").and_then(Json::as_f64) {
                host_tids.insert(tid as u64);
            }
            host_slices += 1;
        }
    }
    if expect_host && host_slices == 0 {
        fail(&format!("{path}: --expect-host but no host-time slices (pid >= 5000) in the trace"));
    }
    println!(
        "check_export: {path} ok ({} events, {} HUB tracks{})",
        events.len(),
        hub_pids.len(),
        if host_slices > 0 {
            format!(", {host_slices} host slices on {} tracks", host_tids.len())
        } else {
            String::new()
        }
    );
}

fn main() {
    let mut bench: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut expect_metrics = false;
    let mut expect_host = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => bench = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace = Some(args.next().unwrap_or_else(|| usage())),
            "--expect-metrics" => expect_metrics = true,
            "--expect-host" => expect_host = true,
            _ => usage(),
        }
    }
    if bench.is_none() && trace.is_none() {
        usage();
    }
    if let Some(p) = bench {
        check_bench(&p, expect_metrics);
    }
    if let Some(p) = trace {
        check_trace(&p, expect_host);
    }
}
