//! Result tables for the experiment harness.
//!
//! Every experiment produces a [`Table`] with a paper-reference column
//! next to the measured values, so `report` output reads like the
//! EXPERIMENTS.md index.

use std::fmt;

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "E01".
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (substitutions, calibration remarks).
    pub notes: Vec<String>,
    /// Simulation events processed while producing this table (0 for
    /// purely analytic experiments). Feeds the harness's events/sec
    /// accounting in `BENCH_sim.json`.
    pub events: u64,
    /// Flight-recorder events captured while the experiment ran.
    /// Populated only when the harness requested a trace.
    pub trace: Vec<nectar_sim::telemetry::TelemetryEvent>,
    /// Metrics harvested from the experiment's worlds. Populated only
    /// when the harness requested metrics.
    pub metrics: Option<nectar_sim::metrics::MetricsRegistry>,
}

impl Table {
    /// Starts a table.
    pub fn new(id: &'static str, title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            events: 0,
            trace: Vec::new(),
            metrics: None,
        }
    }

    /// Accumulates simulation events into the table's counter. Call
    /// once per world the experiment drove (before dropping it).
    pub fn record_events(&mut self, n: u64) {
        self.events += n;
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch in {}", self.id);
        self.rows.push(cells.to_vec());
    }

    /// Adds a row from string slices.
    pub fn row_strs(&mut self, cells: &[&str]) {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned);
    }

    /// Adds a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a duration in microseconds with two decimals.
pub fn us(d: nectar_sim::time::Dur) -> String {
    format!("{:.2} us", d.as_micros_f64())
}

/// Formats a bandwidth in Mbit/s with one decimal.
pub fn mbit(b: nectar_sim::units::Bandwidth) -> String {
    format!("{:.1} Mbit/s", b.as_mbit_per_sec_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E00", "smoke", &["metric", "paper", "measured"]);
        t.row_strs(&["setup latency", "700 ns", "700 ns"]);
        t.note("cycle-calibrated");
        let s = t.to_string();
        assert!(s.contains("E00"));
        assert!(s.contains("setup latency"));
        assert!(s.contains("note: cycle-calibrated"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_rejected() {
        let mut t = Table::new("E00", "smoke", &["a", "b"]);
        t.row_strs(&["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(us(nectar_sim::time::Dur::from_micros(30)), "30.00 us");
        assert_eq!(mbit(nectar_sim::units::Bandwidth::from_mbit_per_sec(100)), "100.0 Mbit/s");
    }
}
