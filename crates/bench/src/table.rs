//! Result tables for the experiment harness.
//!
//! Every experiment produces a [`Table`] with a paper-reference column
//! next to the measured values, so `report` output reads like the
//! EXPERIMENTS.md index.

use std::fmt;

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "E01".
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (substitutions, calibration remarks).
    pub notes: Vec<String>,
    /// Simulation events processed while producing this table (0 for
    /// purely analytic experiments). Feeds the harness's events/sec
    /// accounting in `BENCH_sim.json`.
    pub events: u64,
    /// Flight-recorder events captured while the experiment ran.
    /// Populated only when the harness requested a trace.
    pub trace: Vec<nectar_sim::telemetry::TelemetryEvent>,
    /// Metrics harvested from the experiment's worlds. Populated only
    /// when the harness requested metrics.
    pub metrics: Option<nectar_sim::metrics::MetricsRegistry>,
    /// Runner/runtime counters (sharded windows, barrier waits,
    /// telemetry ring pressure). Kept apart from `metrics`, which is
    /// bit-compared across shard counts and repeats; these describe
    /// the harness, not the simulated system.
    pub runtime: Option<nectar_sim::metrics::MetricsRegistry>,
    /// Streaming-doctor outcome, when the harness ran with `--stream`.
    pub stream: Option<StreamResult>,
    /// Scaling-doctor analysis of the host-time profile, when the
    /// harness ran with `--profile` and the experiment drove a sharded
    /// world. Host-time only — never merged into `metrics`.
    pub profile: Option<nectar_sim::profile::ProfileAnalysis>,
    /// The raw host-time spans behind `profile`, kept so `--trace`
    /// can render host tracks next to the simulated ones.
    pub host_profile: Option<nectar_sim::profile::HostProfile>,
}

/// What the streaming doctor concluded about one experiment's worlds
/// (merged when an experiment drives several).
#[derive(Clone, Debug)]
pub struct StreamResult {
    /// Fold statistics, summed across worlds (peaks take the max).
    pub summary: nectar_sim::analysis::streaming::StreamSummary,
    /// Flights analyzed, from the final reports.
    pub flights: u64,
    /// `false` if any world's capture was truncated.
    pub confident: bool,
    /// Every pathology finding from the final reports, in report
    /// order — the typed verdicts behind `rendered`, kept so the
    /// harness can gate on detector and severity instead of grepping
    /// rendered text.
    pub findings: Vec<nectar_sim::analysis::pathology::Finding>,
    /// The rendered doctor reports, one block per streamed world.
    pub rendered: String,
}

impl StreamResult {
    /// Folds another world's streaming outcome into this one.
    pub fn merge(
        &mut self,
        summary: &nectar_sim::analysis::streaming::StreamSummary,
        report: &nectar_sim::analysis::DoctorReport,
    ) {
        let s = &mut self.summary;
        s.events_folded += summary.events_folded;
        s.flights_seen += summary.flights_seen;
        s.flights_retired += summary.flights_retired;
        s.open_flights += summary.open_flights;
        s.late_events += summary.late_events;
        s.forced_retirements += summary.forced_retirements;
        s.checkpoints += summary.checkpoints;
        s.peak_mem_bytes = s.peak_mem_bytes.max(summary.peak_mem_bytes);
        s.ring_hwm = s.ring_hwm.max(summary.ring_hwm);
        s.ring_dropped += summary.ring_dropped;
        self.flights += report.flights;
        self.confident &= report.confident;
        self.findings.extend(report.findings.iter().cloned());
        self.rendered.push_str(&report.render());
    }
}

impl Table {
    /// Starts a table.
    pub fn new(id: &'static str, title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            events: 0,
            trace: Vec::new(),
            metrics: None,
            runtime: None,
            stream: None,
            profile: None,
            host_profile: None,
        }
    }

    /// Folds one world's streaming-doctor outcome into the table.
    pub fn absorb_stream(
        &mut self,
        summary: &nectar_sim::analysis::streaming::StreamSummary,
        report: &nectar_sim::analysis::DoctorReport,
    ) {
        let slot = self.stream.get_or_insert_with(|| StreamResult {
            summary: Default::default(),
            flights: 0,
            confident: true,
            findings: Vec::new(),
            rendered: String::new(),
        });
        slot.merge(summary, report);
    }

    /// Accumulates simulation events into the table's counter. Call
    /// once per world the experiment drove (before dropping it).
    pub fn record_events(&mut self, n: u64) {
        self.events += n;
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch in {}", self.id);
        self.rows.push(cells.to_vec());
    }

    /// Adds a row from string slices.
    pub fn row_strs(&mut self, cells: &[&str]) {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned);
    }

    /// Adds a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a duration in microseconds with two decimals.
pub fn us(d: nectar_sim::time::Dur) -> String {
    format!("{:.2} us", d.as_micros_f64())
}

/// Formats a bandwidth in Mbit/s with one decimal.
pub fn mbit(b: nectar_sim::units::Bandwidth) -> String {
    format!("{:.1} Mbit/s", b.as_mbit_per_sec_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E00", "smoke", &["metric", "paper", "measured"]);
        t.row_strs(&["setup latency", "700 ns", "700 ns"]);
        t.note("cycle-calibrated");
        let s = t.to_string();
        assert!(s.contains("E00"));
        assert!(s.contains("setup latency"));
        assert!(s.contains("note: cycle-calibrated"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_rejected() {
        let mut t = Table::new("E00", "smoke", &["a", "b"]);
        t.row_strs(&["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(us(nectar_sim::time::Dur::from_micros(30)), "30.00 us");
        assert_eq!(mbit(nectar_sim::units::Bandwidth::from_mbit_per_sec(100)), "100.0 Mbit/s");
    }
}
