//! # nectar-bench — the experiment harness
//!
//! One runner per table/figure of the paper's evaluation (see
//! DESIGN.md §4 for the index and EXPERIMENTS.md for recorded
//! paper-vs-measured results). The `report` binary prints any subset:
//!
//! ```text
//! cargo run --release -p nectar-bench --bin report            # everything
//! cargo run --release -p nectar-bench --bin report -- e01 e03 # a subset
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod hubdriver;
pub mod table;

pub use experiments::registry;
pub use table::Table;
