//! Hardware-level experiments: E01, E02, E05, E06, E07.

use crate::experiments::ExpCtx;
use crate::hubdriver::{drive_hub, packet_emissions};
use crate::table::{us, Table};
use nectar_core::prelude::*;
use nectar_hub::prelude::*;
use nectar_sim::prelude::*;

/// E01 — HUB latency: connection setup + first byte, established-
/// connection transfer, and pipelined bandwidth (paper §4 goal 1).
pub fn e01_hub_latency(_ctx: &ExpCtx) -> Table {
    let mut t =
        Table::new("E01", "HUB latency and pipelining (§4)", &["metric", "paper", "measured"]);
    let mut hub = Hub::new(HubId::new(0), HubConfig::prototype());
    let open = Command::open(false, false, false, HubId::new(0), PortId::new(8));
    let emissions = drive_hub(
        &mut hub,
        vec![
            (Time::ZERO, PortId::new(4), open.into()),
            (Time::from_nanos(240), PortId::new(4), Packet::new(1, vec![0u8; 64]).into()),
            // Much later, over the established connection.
            (Time::from_micros(100), PortId::new(4), Packet::new(2, vec![0u8; 64]).into()),
            // Back-to-back 1 KB packets to observe pipelined rate.
            (Time::from_micros(200), PortId::new(4), Packet::new(3, vec![0u8; 1022]).into()),
            (Time::from_micros(282), PortId::new(4), Packet::new(4, vec![0u8; 1022]).into()),
        ],
    );
    let data = packet_emissions(&emissions);
    let setup = data[0].at.saturating_since(Time::ZERO);
    let established = data[1].at.saturating_since(Time::from_micros(100));
    let spacing = data[3].at.saturating_since(data[2].at);
    let rate_mbit = 1024.0 * 8.0 / spacing.nanos() as f64 * 1000.0;
    t.row(&[
        "setup + first byte through one HUB".into(),
        "700 ns (10 cycles)".into(),
        format!("{setup}"),
    ]);
    t.row(&[
        "established-connection transfer".into(),
        "350 ns (5 cycles)".into(),
        format!("{established}"),
    ]);
    t.row(&[
        "pipelined transfer rate (1 KB packets)".into(),
        "100 Mbit/s fiber peak".into(),
        format!("{rate_mbit:.1} Mbit/s"),
    ]);
    t.note("command wire (240 ns) + controller (110 ns) + transit (350 ns) = 700 ns");
    t
}

/// E02 — controller switching rate: one connection per 70 ns cycle.
pub fn e02_switch_rate(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E02",
        "controller switching rate (§4 goal 2)",
        &["metric", "paper", "measured"],
    );
    let mut hub = Hub::new(HubId::new(0), HubConfig::prototype());
    // Four simultaneous opens from four ports; data behind each.
    let mut arrivals = Vec::new();
    for p in 0..4u8 {
        let open = Command::open(false, false, false, HubId::new(0), PortId::new(8 + p));
        arrivals.push((Time::ZERO, PortId::new(p), Item::from(open)));
        arrivals.push((
            Time::from_nanos(240),
            PortId::new(p),
            Packet::new(p as u64, vec![0u8; 16]).into(),
        ));
    }
    let emissions = drive_hub(&mut hub, arrivals);
    let mut first_bytes: Vec<Time> = packet_emissions(&emissions).iter().map(|e| e.at).collect();
    first_bytes.sort();
    let gaps: Vec<String> =
        first_bytes.windows(2).map(|w| format!("{}", w[1].saturating_since(w[0]))).collect();
    t.row(&[
        "spacing of consecutive connection setups".into(),
        "70 ns (one per cycle)".into(),
        gaps.join(", "),
    ]);
    t.row(&[
        "implied setup rate".into(),
        "14.3 M connections/s".into(),
        format!("{:.1} M connections/s", 1000.0 / 70.0),
    ]);
    t
}

/// Builds the paper's Fig. 7 four-HUB topology (hub indices are the
/// paper's numbers minus one).
pub fn fig7_topology() -> (Topology, [usize; 5]) {
    let mut b = TopologyBuilder::new(4, 16);
    let cab1 = b.add_cab(0, PortId::new(1)).unwrap();
    let cab2 = b.add_cab(0, PortId::new(2)).unwrap();
    let cab3 = b.add_cab(1, PortId::new(4)).unwrap();
    let cab4 = b.add_cab(3, PortId::new(5)).unwrap();
    let cab5 = b.add_cab(2, PortId::new(6)).unwrap();
    b.link_hubs(1, PortId::new(8), 0, PortId::new(3)).unwrap(); // HUB2 <-> HUB1
    b.link_hubs(0, PortId::new(6), 3, PortId::new(7)).unwrap(); // HUB1 <-> HUB4
    b.link_hubs(3, PortId::new(3), 2, PortId::new(9)).unwrap(); // HUB4 <-> HUB3
    (b.build().unwrap(), [cab1, cab2, cab3, cab4, cab5])
}

/// E05 — the Fig. 7 circuit-switching walk: CAB3 to CAB1 through HUB2
/// and HUB1, exactly the §4.2.1 command sequence.
pub fn e05_fig7_circuit(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E05",
        "Fig. 7 circuit switching across four HUBs (§4.2.1)",
        &["metric", "paper", "measured"],
    );
    let (topo, cabs) = fig7_topology();
    let route = topo.route(cabs[2], cabs[0]).unwrap();
    t.row(&[
        "route CAB3 -> CAB1".into(),
        "HUB2 P8, then HUB1 (reply from HUB1)".into(),
        route.to_string(),
    ]);
    let opens: Vec<String> = route.circuit_open_items().iter().map(|i| i.to_string()).collect();
    t.row(&[
        "command packet".into(),
        "open w/ retry HUB2 P8; open w/ retry+reply HUB1 P8".into(),
        opens.join("; "),
    ]);
    let cfg = SystemConfig { switching: SwitchingMode::CircuitCached, ..SystemConfig::default() };
    let mut sys = NectarSystem::custom(topo, cfg);
    ctx.prepare(sys.world_mut());
    // Watch the walk on HUB2's instrumentation board (our index 1).
    sys.world_mut().enable_hub_trace(1);
    let report = sys.measure_cab_to_cab(cabs[2], cabs[0], 64);
    t.row(&[
        "CAB3 -> CAB1 process latency (2 HUBs)".into(),
        "< 30 us goal + ~0.7 us/extra HUB".into(),
        us(report.latency),
    ]);
    let trace: Vec<String> = sys
        .world()
        .hub(1)
        .trace()
        .by_category(nectar_sim::trace::Category::Controller)
        .take(2)
        .map(|r| r.to_string())
        .collect();
    t.row(&[
        "HUB2 instrumentation trace".into(),
        "controller executes the open".into(),
        trace.join(" | "),
    ]);
    t.note("data follows the opens in FIFO order, so no reply wait is on the critical path");
    t.note("hub ids are zero-based here: the paper's HUB2 is HUB1, HUB1 is HUB0");
    t.record_events(sys.world().events_processed());
    ctx.absorb(&mut t, sys.world_mut());
    t
}

/// E06 — multicast vs sequential unicast (§4.2.2/4.2.4).
pub fn e06_multicast(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E06",
        "hardware multicast vs sequential unicast (§4.2.2)",
        &["fan-out", "multicast (last delivery)", "unicasts (last delivery)", "speedup"],
    );
    for fanout in [2usize, 4, 8] {
        let mut sys = NectarSystem::single_hub(fanout + 2, SystemConfig::default());
        ctx.prepare(sys.world_mut());
        let dsts: Vec<usize> = (1..=fanout).collect();
        let (mc, uc) = sys.measure_multicast_vs_unicast(0, &dsts, 512);
        t.record_events(sys.world().events_processed());
        ctx.absorb(&mut t, sys.world_mut());
        t.row(&[
            format!("{fanout}"),
            us(mc),
            us(uc),
            format!("{:.2}x", uc.nanos() as f64 / mc.nanos().max(1) as f64),
        ]);
    }
    t.note("one packet fans out through the crossbar; unicasts serialize on the sender fiber");
    t
}

/// E07 — packet switching vs circuit switching across message sizes,
/// and the 1 KB packet-size rule (§4.2.3).
pub fn e07_circuit_vs_packet(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E07",
        "packet vs circuit switching by message size (§4.2.3)",
        &["message", "packet-switched", "circuit-cached", "fragments"],
    );
    for &size in &[64usize, 512, 1024, 4096, 16384, 65536] {
        let mut ps = NectarSystem::single_hub(2, SystemConfig::default());
        ctx.prepare(ps.world_mut());
        let lat_ps = ps.measure_cab_to_cab(0, 1, size).latency;
        let cfg =
            SystemConfig { switching: SwitchingMode::CircuitCached, ..SystemConfig::default() };
        let mut cs = NectarSystem::single_hub(2, cfg);
        // Warm the circuit, then measure.
        cs.measure_cab_to_cab(0, 1, 16);
        let lat_cs = cs.measure_cab_to_cab(0, 1, size).latency;
        t.record_events(ps.world().events_processed());
        t.record_events(cs.world().events_processed());
        ctx.absorb(&mut t, ps.world_mut());
        let frags = nectar_proto::transport::frag::fragment_count(size, 990);
        t.row(&[format!("{size} B"), us(lat_ps), us(lat_cs), format!("{frags}")]);
    }
    t.note("paper: circuit setup is small vs packet transmission time, so the modes stay close");
    t.note("packets above 1 KB must fragment (queue-limited) under packet switching");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_hits_the_paper_numbers() {
        let t = e01_hub_latency(&ExpCtx::off());
        assert!(t.rows[0][2].contains("700 ns"), "{}", t.rows[0][2]);
        assert!(t.rows[1][2].contains("350 ns"), "{}", t.rows[1][2]);
    }

    #[test]
    fn e02_shows_70ns_spacing() {
        let t = e02_switch_rate(&ExpCtx::off());
        assert!(t.rows[0][2].contains("70 ns"), "{}", t.rows[0][2]);
    }

    #[test]
    fn e05_route_matches_paper() {
        let t = e05_fig7_circuit(&ExpCtx::off());
        assert!(t.rows[1][2].contains("open with retry HUB1 P8"), "{}", t.rows[1][2]);
    }

    #[test]
    fn e06_multicast_always_wins() {
        let t = e06_multicast(&ExpCtx::off());
        for row in &t.rows {
            let speedup: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(speedup > 1.0, "{row:?}");
        }
    }

    #[test]
    fn e07_runs_all_sizes() {
        let t = e07_circuit_vs_packet(&ExpCtx::off());
        assert_eq!(t.rows.len(), 6);
    }
}
