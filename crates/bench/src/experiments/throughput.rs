//! Throughput experiments: E04, E11, E13, E18.

use crate::experiments::ExpCtx;
use crate::table::{mbit, us, Table};
use nectar_cab::dma::{Channel, DmaController};
use nectar_cab::timings::CabTimings;
use nectar_core::prelude::*;
use nectar_proto::pipeline::PipelineModel;
use nectar_sim::time::{Dur, Time};
use nectar_sim::units::Bandwidth;

/// E04 — aggregate backplane bandwidth: 16 CABs in a ring approach the
/// 1.6 Gbit/s the abstract claims.
pub fn e04_aggregate_bandwidth(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E04",
        "aggregate backplane bandwidth (abstract, §3.1)",
        &["configuration", "paper", "measured"],
    );
    let mut single = NectarSystem::single_hub(2, SystemConfig::default());
    let one = single.measure_stream_throughput(0, 1, 256 * 1024, 8192);
    t.record_events(single.world().events_processed());
    t.row(&["single stream, one fiber".into(), "<= 100 Mbit/s".into(), mbit(one.rate)]);
    let mut last_util = 0.0;
    for cabs in [4usize, 8, 16] {
        let mut sys = NectarSystem::single_hub(cabs, SystemConfig::default());
        let agg = sys.measure_ring_aggregate(96 * 1024, 8192);
        t.record_events(sys.world().events_processed());
        last_util = sys.world().fiber_utilization(0);
        t.row(&[
            format!("{cabs}-CAB ring through the crossbar"),
            format!("~{} Mbit/s ({}x100)", cabs * 100, cabs),
            mbit(agg.rate),
        ]);
    }
    t.note("16 ports x 100 Mbit/s = 1.6 Gbit/s aggregate; protocol overhead costs a few percent");
    t.note(format!(
        "raw wire occupancy per fiber during the 16-CAB run: {:.0}% (headers, acks, and          commands fill the gap between delivered payload and the 100 Mbit/s line)",
        last_util * 100.0
    ));
    t
}

/// E11 — the packet pipeline for large node-to-node messages (§6.2.2):
/// packet-size sweep, the planner's optimum, and the no-overlap
/// baseline.
pub fn e11_packet_pipeline(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E11",
        "packet pipeline for large messages (§6.2.2)",
        &["packet size", "1 MB transfer time", "throughput"],
    );
    let model = PipelineModel::prototype();
    let message = 1 << 20;
    for &packet in &[512usize, 2048, 8192, 32768, 131072] {
        let time = model.transfer_time(message, packet);
        t.row(&[
            format!("{packet} B"),
            format!("{:.2} ms", time.as_secs_f64() * 1e3),
            mbit(model.throughput(message, packet)),
        ]);
    }
    let (best, best_time) = model.optimal_packet_size(message);
    t.row(&[
        format!("optimal ({best} B, planner-selected)"),
        format!("{:.2} ms", best_time.as_secs_f64() * 1e3),
        mbit(model.throughput(message, best)),
    ]);
    let sf = model.store_and_forward_time(message);
    t.row(&[
        "no overlap (whole-message store-and-forward)".into(),
        format!("{:.2} ms", sf.as_secs_f64() * 1e3),
        mbit(Bandwidth::from_bits_per_sec(
            ((message as u128 * 8 * 1_000_000_000 / sf.nanos() as u128) as u64).max(1),
        )),
    ]);
    t.note("VME (10 MB/s) is the bottleneck stage; overlap hides the fiber and far-side VME");
    t
}

/// E13 — CAB memory system: concurrent DMA on the 66 MB/s data memory
/// and the 10 MB/s VME ceiling (§5.2).
pub fn e13_cab_memory(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E13",
        "CAB data-memory and VME bandwidth (§5.2)",
        &["scenario", "paper", "measured"],
    );
    let mut dma = DmaController::new(CabTimings::prototype());
    // All four channels at once, 100 KB each.
    let a = dma.start(Time::ZERO, Channel::FiberIn, 100_000);
    let b = dma.start(Time::ZERO, Channel::FiberOut, 100_000);
    let c = dma.start(Time::ZERO, Channel::VmeIn, 100_000);
    let d = dma.start(Time::ZERO, Channel::VmeOut, 100_000);
    let rate = |x: &nectar_cab::dma::Transfer| {
        let dur = x.complete.saturating_since(x.start);
        (x.bytes as f64 / dur.as_secs_f64()) / 1e6
    };
    t.row(&[
        "fiber-in + fiber-out concurrent".into(),
        "12.5 MB/s each (fiber-paced)".into(),
        format!("{:.1} + {:.1} MB/s", rate(&a), rate(&b)),
    ]);
    t.row(&[
        "VME in + out concurrent with both fibers".into(),
        "10 MB/s each (VME-paced)".into(),
        format!("{:.1} + {:.1} MB/s", rate(&c), rate(&d)),
    ]);
    let sum = rate(&a) + rate(&b) + rate(&c) + rate(&d);
    t.row(&[
        "aggregate concurrent demand".into(),
        "within 66 MB/s data memory".into(),
        format!("{sum:.1} MB/s"),
    ]);
    // Overload case: shrink the memory to show arbitration binding.
    let timings =
        CabTimings { data_memory_bw: Bandwidth::from_mbyte_per_sec(20), ..CabTimings::prototype() };
    let mut starved = DmaController::new(timings);
    let _ = starved.start(Time::ZERO, Channel::FiberIn, 100_000);
    let slow = starved.start(Time::ZERO, Channel::FiberOut, 100_000);
    t.row(&[
        "ablation: 20 MB/s memory, two fibers".into(),
        "sharing binds below fiber rate".into(),
        format!("{:.1} MB/s per fiber", rate(&slow)),
    ]);
    t
}

/// E18 — the CAB keeps up with 100 Mbit/s in both directions at once
/// (§5.1 requirement 1).
pub fn e18_full_duplex(_ctx: &ExpCtx) -> Table {
    let mut t =
        Table::new("E18", "CAB full-duplex fiber rate (§5.1)", &["direction", "paper", "measured"]);
    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    let total = 256 * 1024;
    let t0 = sys.world().now();
    // Both CABs stream to each other simultaneously.
    let messages = total / 8192;
    let payload = vec![0u8; 8192];
    for _ in 0..messages {
        sys.world_mut().send_stream_now(0, 1, 1, 2, &payload);
        sys.world_mut().send_stream_now(1, 0, 1, 2, &payload);
    }
    let deadline = t0 + Dur::from_secs(10);
    while sys.world().deliveries.len() < 2 * messages {
        let Some(next) = sys.world().next_event_time() else { break };
        if next > deadline {
            break;
        }
        sys.world_mut().run_until(next);
        for cab in 0..2 {
            while sys.world_mut().mailbox_take(cab, 2).is_some() {}
        }
    }
    let elapsed = sys.world().now().saturating_since(t0);
    t.record_events(sys.world().events_processed());
    let per_dir = ((total as u128 * 8 * 1_000_000_000) / elapsed.nanos().max(1) as u128) as u64;
    t.row(&[
        "0 -> 1 and 1 -> 0 concurrently".into(),
        "100 Mbit/s each direction".into(),
        format!("{:.1} Mbit/s per direction", per_dir as f64 / 1e6),
    ]);
    t.row(&[
        "transfer completion".into(),
        "no overruns".into(),
        format!(
            "{} overruns, {}",
            sys.world().cab_counters(0).overruns + sys.world().cab_counters(1).overruns,
            us(elapsed)
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e04_single_stream_near_line_rate() {
        let t = e04_aggregate_bandwidth(&ExpCtx::off());
        let v: f64 = t.rows[0][2].trim_end_matches(" Mbit/s").parse().unwrap();
        assert!(v > 80.0 && v <= 100.0, "{v}");
    }

    #[test]
    fn e11_pipeline_beats_store_and_forward() {
        let t = e11_packet_pipeline(&ExpCtx::off());
        let parse_ms = |s: &str| -> f64 { s.trim_end_matches(" ms").parse().unwrap() };
        let optimal = parse_ms(&t.rows[5][1]);
        let sf = parse_ms(&t.rows[6][1]);
        assert!(optimal * 1.8 < sf, "optimal {optimal} vs store-and-forward {sf}");
    }

    #[test]
    fn e13_memory_supports_concurrency() {
        let t = e13_cab_memory(&ExpCtx::off());
        let agg: f64 = t.rows[2][2].trim_end_matches(" MB/s").parse().unwrap();
        assert!(agg < 66.0, "aggregate {agg} must fit the data memory");
        assert!(agg > 40.0, "all four channels run at media rate: {agg}");
    }

    #[test]
    fn e18_both_directions_fast() {
        let t = e18_full_duplex(&ExpCtx::off());
        let v: f64 = t.rows[0][2].trim_end_matches(" Mbit/s per direction").parse().unwrap();
        assert!(v > 70.0, "per-direction rate {v}");
    }
}
