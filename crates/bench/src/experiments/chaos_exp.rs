//! E25 — the chaos family: seeded fault schedules against the
//! transport invariants, as a reportable experiment.
//!
//! Each row arms a [`ChaosSchedule`], drives a mixed workload to
//! quiescence, and audits with the
//! [`InvariantChecker`](nectar_core::invariants::InvariantChecker).
//! The default rows use fixed seeds (deterministic, CI-friendly);
//! `report --chaos-seed N [--chaos-spec 'PROG']` replaces them with
//! one replay row — the flags a failing campaign test prints.

use crate::experiments::ExpCtx;
use crate::table::Table;
use nectar_core::invariants::{replay_line, InvariantChecker};
use nectar_core::prelude::*;
use nectar_sim::chaos::ChaosSchedule;
use nectar_sim::time::Dur;

/// The schedules a chaos experiment runs: the operator's replay
/// override if present, else `random(seed, cabs)` over `seeds`.
fn schedules(ctx: &ExpCtx, seeds: &[u64], cabs: u16) -> Vec<ChaosSchedule> {
    if let Some(seed) = ctx.chaos_seed {
        let sched = match ctx.chaos_spec.as_deref() {
            Some(spec) => {
                ChaosSchedule::parse(seed, spec).unwrap_or_else(|e| panic!("--chaos-spec: {e}"))
            }
            None => ChaosSchedule::random(seed, cabs),
        };
        return vec![sched];
    }
    seeds.iter().map(|&s| ChaosSchedule::random(s, cabs)).collect()
}

/// One campaign: streams (and optionally RPC) under `schedule`,
/// audited at quiescence. Returns `(verdict, faults, retransmissions)`.
fn campaign(
    world: &mut World,
    streams: &[(usize, usize, u16)],
    rpc: Option<(usize, usize)>,
    schedule: &ChaosSchedule,
) -> (String, u64, u64) {
    world.set_chaos(schedule.clone());
    let mut checker = InvariantChecker::new();
    for &(src, dst, mailbox) in streams {
        for i in 0..3usize {
            let payload = vec![(11 + 29 * src + 5 * i) as u8; 300 + 500 * i];
            world.send_stream_now(src, dst, 1, mailbox, &payload);
            checker.expect_stream(src, dst, mailbox, &payload);
        }
    }
    if let Some((client, server)) = rpc {
        for i in 0..4usize {
            let t0 = world.now();
            let before = world.deliveries.len();
            let tx = world.send_rpc_now(client, server, 5, 80, &[i as u8; 40]);
            checker.expect_rpc(server);
            let deadline = t0 + Dur::from_millis(20);
            let mut responded = false;
            while let Some(next) = world.next_event_time() {
                if next > deadline {
                    break;
                }
                world.run_until(next);
                if !responded
                    && world.deliveries[before..].iter().any(|d| d.cab == server && d.mailbox == 80)
                {
                    world.rpc_respond_now(server, client, tx, &[0x5A; 24]);
                    responded = true;
                }
                if world.deliveries[before..].iter().any(|d| d.cab == client && d.mailbox == 5) {
                    break;
                }
            }
            while world.mailbox_take(server, 80).is_some() {}
            while world.mailbox_take(client, 5).is_some() {}
        }
    }
    // Generous: RTO backoff caps at 64x and flap down-windows can
    // deny a majority of each period, so convergence can take a
    // while. Simulated time is cheap.
    let deadline = world.now() + Dur::from_secs(2);
    world.run_to_quiescence(deadline);
    let violations = checker.check(world);
    let verdict = if violations.is_empty() {
        "pass".to_string()
    } else {
        format!("VIOLATED: {}", violations[0])
    };
    let stats = world.chaos_stats().unwrap_or_default();
    let faults = stats.total_drops() + stats.duplicates + stats.reorders + stats.corruptions;
    let rtx = streams
        .iter()
        .filter_map(|&(src, dst, _)| world.stream_stats(src, dst))
        .map(|s| s.retransmissions)
        .sum();
    (verdict, faults, rtx)
}

fn spec_cell(schedule: &ChaosSchedule) -> String {
    let spec = schedule.spec();
    if spec.len() > 48 {
        format!("{}…", &spec[..spec.char_indices().take_while(|(i, _)| *i < 48).count()])
    } else {
        spec
    }
}

/// E25 — byte streams on the single-HUB star under random schedules.
pub fn e25_stream_chaos(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E25",
        "chaos: byte streams on the star",
        &["seed", "schedule", "faults applied", "retransmissions", "invariants"],
    );
    for sched in schedules(ctx, &[101, 202, 303], 4) {
        let mut world = World::new(Topology::single_hub(4, 16), SystemConfig::default());
        ctx.prepare(&mut world);
        let (verdict, faults, rtx) =
            campaign(&mut world, &[(0, 1, 2), (1, 0, 3), (2, 3, 4)], None, &sched);
        t.record_events(world.events_processed());
        t.row(&[
            format!("{}", sched.seed),
            spec_cell(&sched),
            format!("{faults}"),
            format!("{rtx}"),
            verdict.clone(),
        ]);
        if verdict != "pass" {
            t.note(format!("replay: report e25 {}", replay_line(&sched)));
        }
        ctx.absorb(&mut t, &mut world);
    }
    t.note("exactly-once in-order delivery, pool conservation, counter coherence at quiescence");
    t
}

/// E25b — request-response at-most-once under random schedules.
pub fn e25b_rpc_chaos(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E25b",
        "chaos: request-response (at-most-once)",
        &["seed", "schedule", "faults applied", "executions", "invariants"],
    );
    for sched in schedules(ctx, &[404, 505], 2) {
        let mut world = World::new(Topology::single_hub(2, 16), SystemConfig::default());
        ctx.prepare(&mut world);
        let (verdict, faults, _) = campaign(&mut world, &[], Some((0, 1)), &sched);
        let (executed, _, _) = world.rpc_server_stats(1);
        t.record_events(world.events_processed());
        t.row(&[
            format!("{}", sched.seed),
            spec_cell(&sched),
            format!("{faults}"),
            format!("{executed}"),
            verdict.clone(),
        ]);
        if verdict != "pass" {
            t.note(format!("replay: report e25b {}", replay_line(&sched)));
        }
        ctx.absorb(&mut t, &mut world);
    }
    t.note("a server never executes a transaction twice, however lossy or duplicative the wire");
    t
}

/// E25c — mixed streams + RPC across a 2x2 mesh (multi-hop routes).
pub fn e25c_mesh_chaos(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E25c",
        "chaos: 2x2 mesh, multi-hop",
        &["seed", "schedule", "faults applied", "retransmissions", "invariants"],
    );
    for sched in schedules(ctx, &[606, 707], 4) {
        let mut world = World::new(Topology::mesh2d(2, 2, 1, 16), SystemConfig::default());
        ctx.prepare(&mut world);
        let (verdict, faults, rtx) =
            campaign(&mut world, &[(0, 3, 2), (3, 0, 3), (1, 2, 4)], Some((0, 1)), &sched);
        t.record_events(world.events_processed());
        t.row(&[
            format!("{}", sched.seed),
            spec_cell(&sched),
            format!("{faults}"),
            format!("{rtx}"),
            verdict.clone(),
        ]);
        if verdict != "pass" {
            t.note(format!("replay: report e25c {}", replay_line(&sched)));
        }
        ctx.absorb(&mut t, &mut world);
    }
    t.note("broad clauses disturb only CAB links (ready-timeout recovers); hubN.P targets trunks");
    t
}
