//! Application experiments (E16, E17) and ablations.

use crate::experiments::ExpCtx;
use crate::table::{mbit, us, Table};
use nectar_apps::prelude::*;
use nectar_core::prelude::*;
use nectar_sim::time::Dur;

/// E16 — the vision pipeline: bandwidth and latency coexist (§7).
pub fn e16_vision(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E16",
        "vision application: Warp images + spatial-database queries (§7)",
        &["metric", "requirement", "measured"],
    );
    let cfg = VisionConfig::default();
    let report = run_vision(&cfg, SystemConfig::default());
    t.record_events(report.events);
    t.row(&[
        "image tile throughput (256 KB frames)".into(),
        "high bandwidth for image transfer".into(),
        mbit(report.image_throughput),
    ]);
    t.row(&[
        "frame transfer time (mean)".into(),
        "megabyte images at video rates".into(),
        format!("{:.2} ms", report.frame_transfer.mean() / 1e6),
    ]);
    t.row(&[
        "spatial query RTT (mean / p99)".into(),
        "low latency between database nodes".into(),
        format!(
            "{:.1} / {:.1} us",
            report.query_rtt.mean() / 1e3,
            report.query_rtt.quantile(0.99) / 1e3
        ),
    ]);
    t.row(&[
        "sustained frame rate".into(),
        "video rate".into(),
        format!("{:.1} frames/s", report.frame_rate()),
    ]);
    t
}

/// E17 — the parallel production system: fine-grained tokens (§7).
pub fn e17_production(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E17",
        "parallel production system: distributed RETE tokens (§7)",
        &["metric", "requirement", "measured"],
    );
    let cfg = ProductionConfig::default();
    let report = run_production(&cfg, SystemConfig::default());
    t.record_events(report.events);
    t.row(&[
        "tokens matched".into(),
        format!("{}", cfg.max_tokens),
        format!("{}", report.tokens_matched),
    ]);
    t.row(&[
        "token throughput".into(),
        "fine-grained parallelism".into(),
        format!("{:.0} tokens/s", report.token_rate()),
    ]);
    t.row(&[
        "per-token network latency".into(),
        "tens of microseconds".into(),
        us(Dur::from_nanos(report.token_latency.mean() as u64)),
    ]);
    // The LAN bound for the same workload: one token per ~1.1 ms hop.
    let lan_stack = nectar_lan::stack::UnixStackConfig::bsd_1988();
    let lan_hop = lan_stack.send_packet(cfg.token_bytes) + lan_stack.recv_packet(cfg.token_bytes);
    t.row(&[
        "same workload on the LAN baseline (bound)".into(),
        "collapses to per-hop software time".into(),
        format!(
            "<= {:.0} tokens/s per worker chain ({} per hop)",
            1e9 / lan_hop.nanos() as f64,
            us(lan_hop)
        ),
    ]);
    t
}

/// E16b — scientific kernels over the iPSC layer (§7).
pub fn e16b_scientific(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E16b",
        "iPSC-ported scientific kernels (§7)",
        &["kernel", "communication per round", "outcome"],
    );
    let jac = run_jacobi(&JacobiConfig::default(), SystemConfig::default());
    t.row(&[
        "1-D Jacobi stencil (4 nodes)".into(),
        us(Dur::from_nanos(jac.comm_per_iteration.mean() as u64)),
        format!("monotonicity violation {:.2e}", jac.residual),
    ]);
    let ann = run_annealing(&AnnealingConfig::default(), SystemConfig::default());
    t.row(&[
        "parallel simulated annealing (4 nodes)".into(),
        us(Dur::from_nanos(ann.exchange_time.mean() as u64)),
        format!("tour cost {:.3} -> {:.3}", ann.initial_cost, ann.best_cost),
    ]);
    t.note("halo exchanges cost tens of microseconds — negligible against any real compute step");
    t
}

/// Ablation — the DESIGN.md §5 design-choice studies.
pub fn ablations(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "ABL",
        "design-choice ablations (DESIGN.md §5)",
        &["design choice", "with", "without", "effect"],
    );
    // 1. Protocol offload: shared-memory (CAB transport) vs driver
    //    (node-resident transport).
    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    let offload = sys.measure_node_to_node(0, 1, 1024, NodeInterface::SharedMemory).latency;
    let mut sys2 = NectarSystem::single_hub(2, SystemConfig::default());
    let onload = sys2.measure_node_to_node(0, 1, 1024, NodeInterface::Driver).latency;
    t.row(&[
        "protocol off-loading to the CAB".into(),
        us(offload),
        us(onload),
        format!("{:.1}x latency without", onload.nanos() as f64 / offload.nanos().max(1) as f64),
    ]);
    // 2. Hardware flow control: burst two packets at a busy output.
    let burst_overflows = |flow_control: bool| -> u64 {
        let hub = nectar_hub::config::HubConfig { flow_control, ..Default::default() };
        let cfg = SystemConfig { hub, ..SystemConfig::default() };
        let mut s = NectarSystem::single_hub(4, cfg);
        // Two senders burst at the same receiver.
        for src in [1usize, 2] {
            for _ in 0..4 {
                s.world_mut().send_datagram_now(src, 0, 1, 2, &vec![9u8; 990]);
            }
        }
        let deadline = s.world().now() + Dur::from_millis(20);
        s.world_mut().run_until(deadline);
        s.world().hub(0).counters().overflows
    };
    let with_fc = burst_overflows(true);
    let without_fc = burst_overflows(false);
    t.row(&[
        "ready-bit flow control (test open)".into(),
        format!("{with_fc} overflows"),
        format!("{without_fc} overflows"),
        "bursts overrun the 1 KB queues without it".into(),
    ]);
    // 3. Connection cache: repeated sends to one destination.
    let repeat_latency = |switching: SwitchingMode| -> Dur {
        let cfg = SystemConfig { switching, ..SystemConfig::default() };
        let mut s = NectarSystem::single_hub(2, cfg);
        s.measure_cab_to_cab(0, 1, 64); // warm
                                        // Let the warm-up's acknowledgements drain so they do not share
                                        // the measured window.
        let settle = s.world().now() + Dur::from_millis(1);
        s.world_mut().run_until(settle);
        s.measure_cab_to_cab(0, 1, 64).latency
    };
    let cached = repeat_latency(SwitchingMode::CircuitCached);
    let uncached = repeat_latency(SwitchingMode::PacketSwitched);
    t.row(&[
        "connection cache (kept circuit)".into(),
        us(cached),
        us(uncached),
        "cached circuit skips the per-hop open commands".into(),
    ]);
    // 4. Thread-switch cost sensitivity (10 / 12 / 15 us).
    let lat_for_switch = |sw_us: u64| -> Dur {
        let cab = nectar_cab::timings::CabTimings {
            thread_switch: Dur::from_micros(sw_us),
            ..nectar_cab::timings::CabTimings::prototype()
        };
        let cfg = SystemConfig { cab, ..SystemConfig::default() };
        let mut s = NectarSystem::single_hub(2, cfg);
        s.measure_cab_to_cab(0, 1, 64).latency
    };
    t.row(&[
        "thread switch 10 vs 15 us (§6.1 band)".into(),
        us(lat_for_switch(10)),
        us(lat_for_switch(15)),
        "the switch is the largest single software cost".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_reports_all_metrics() {
        let t = e16_vision(&ExpCtx::off());
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn e17_token_rate_beats_lan_bound() {
        let t = e17_production(&ExpCtx::off());
        let nectar_rate: f64 = t.rows[1][2].trim_end_matches(" tokens/s").parse().unwrap();
        assert!(nectar_rate > 2_000.0, "{nectar_rate}");
    }

    #[test]
    fn ablation_flow_control_matters() {
        let t = ablations(&ExpCtx::off());
        let with_fc: u64 = t.rows[1][1].trim_end_matches(" overflows").parse().unwrap();
        let without: u64 = t.rows[1][2].trim_end_matches(" overflows").parse().unwrap();
        assert_eq!(with_fc, 0, "flow control prevents overruns");
        assert!(without > 0, "the ablation shows the loss");
    }

    #[test]
    fn ablation_offload_wins() {
        let t = ablations(&ExpCtx::off());
        assert!(t.rows[0][3].contains('x'));
    }
}
