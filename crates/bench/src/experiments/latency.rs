//! Latency experiments: E03, E09, E12, E14.

use crate::experiments::ExpCtx;
use crate::table::{us, Table};
use nectar_cab::timings::CabTimings;
use nectar_core::prelude::*;
use nectar_kernel::thread::Scheduler;
use nectar_sim::time::{Dur, Time};

/// E03 — the §2.3 latency goals: CAB↔CAB < 30 µs, node↔node < 100 µs,
/// HUB connection < 1 µs.
pub fn e03_latency_goals(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E03",
        "communication latency goals (§2.3)",
        &["path", "paper goal", "measured", "met"],
    );
    let cfg = SystemConfig::default();
    let hub_setup = cfg.hub.connect_latency() + cfg.hub.transit;
    let mut sys = NectarSystem::single_hub(4, cfg);
    ctx.prepare(sys.world_mut());
    for &size in &[16usize, 64, 256] {
        let r = sys.measure_cab_to_cab(0, 1, size);
        t.row(&[
            format!("CAB to CAB, {size} B message"),
            "< 30 us".into(),
            us(r.latency),
            yesno(r.latency < Dur::from_micros(30)),
        ]);
    }
    for &size in &[16usize, 64, 256] {
        let r = sys.measure_node_to_node(2, 3, size, NodeInterface::SharedMemory);
        t.row(&[
            format!("node to node (shared memory), {size} B"),
            "< 100 us".into(),
            us(r.latency),
            yesno(r.latency < Dur::from_micros(100)),
        ]);
    }
    t.row(&[
        "connection through a single HUB".into(),
        "< 1 us".into(),
        format!("{hub_setup}"),
        yesno(hub_setup < Dur::from_micros(1)),
    ]);
    t.record_events(sys.world().events_processed());
    ctx.absorb(&mut t, sys.world_mut());
    t
}

/// E09 — kernel operation costs: thread switch 10–15 µs, interrupt
/// path, mailbox operations (§6.1).
pub fn e09_kernel_ops(_ctx: &ExpCtx) -> Table {
    let mut t =
        Table::new("E09", "CAB kernel operation costs (§6.1)", &["operation", "paper", "measured"]);
    let timings = CabTimings::prototype();
    // Measure the switch the same way the paper did: run two threads
    // alternately and time the gap.
    let mut sched = Scheduler::new(timings.clone());
    let a = sched.spawn("a");
    let b = sched.spawn("b");
    let (_, e1) = sched.run(Time::ZERO, a, Dur::from_micros(1));
    let (s2, _) = sched.run(e1, b, Dur::from_micros(1));
    let switch = s2.saturating_since(e1);
    t.row(&["thread switch (register windows)".into(), "10-15 us".into(), us(switch)]);
    t.row(&[
        "interrupt entry (reserved trap window)".into(),
        "\"reduced overhead\"".into(),
        us(timings.interrupt_entry),
    ]);
    t.row(&["datalink->transport upcall".into(), "(§6.2.1)".into(), us(timings.upcall)]);
    t.row(&["mailbox append/consume".into(), "\"efficient\"".into(), us(timings.mailbox_op)]);
    t.row(&["timer arm/cancel".into(), "\"low overhead\"".into(), us(timings.timer_op)]);
    t.row(&[
        "send path per packet (header+datalink+DMA)".into(),
        "(calibrated)".into(),
        us(timings.send_path()),
    ]);
    t.row(&[
        "receive path per packet (interrupt+upcall+header+DMA)".into(),
        "(calibrated)".into(),
        us(timings.recv_path()),
    ]);
    t.note("calibrated so the end-to-end §2.3 budgets land where the paper states them");
    // The full 64 B CAB-to-CAB budget, decomposed.
    let cfg = SystemConfig::default();
    let mut total = Dur::ZERO;
    for (label, d) in nectar_core::system::latency_budget(&cfg, 64) {
        t.row(&[format!("budget: {label}"), "-".into(), us(d)]);
        total += d;
    }
    t.row(&["budget: total (64 B, one HUB)".into(), "< 30 us".into(), us(total)]);
    t
}

/// E12 — the three CAB–node interfaces (§6.2.3).
pub fn e12_node_interfaces(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E12",
        "CAB-node interfaces (§6.2.3)",
        &["interface", "64 B message", "4 KB message", "64 KB message"],
    );
    for iface in NodeInterface::ALL {
        let mut cells = vec![iface.to_string()];
        for &size in &[64usize, 4096, 65536] {
            let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
            ctx.prepare(sys.world_mut());
            let r = sys.measure_node_to_node(0, 1, size, iface);
            t.record_events(sys.world().events_processed());
            ctx.absorb(&mut t, sys.world_mut());
            cells.push(us(r.latency));
        }
        t.row(&cells);
    }
    t.note("shared memory: no syscalls/copies; socket: syscalls+copies, transport on CAB;");
    t.note("driver: 'dumb network' — per-packet interrupts and transport on the node");
    t
}

/// E14 — multi-HUB scaling: latency vs hop count on a mesh (Fig. 4).
pub fn e14_mesh_scaling(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E14",
        "latency vs HUB hops on a mesh (Fig. 4, §4 goal 3)",
        &["HUBs traversed", "64 B latency", "increment"],
    );
    let mut sys = NectarSystem::mesh(1, 6, 2, SystemConfig::default());
    ctx.prepare(sys.world_mut());
    let mut prev: Option<Dur> = None;
    for hub in 0..6usize {
        let dst = hub * 2 + 1; // second CAB on each hub
        let src = 0usize;
        if dst == src {
            continue;
        }
        let hops = sys.world().topology().hop_count(src, dst).unwrap();
        let r = sys.measure_cab_to_cab(src, dst, 64);
        let inc = prev.map_or("-".to_string(), |p| us(r.latency.saturating_sub(p)));
        t.row(&[format!("{hops}"), us(r.latency), inc]);
        prev = Some(r.latency);
    }
    t.record_events(sys.world().events_processed());
    ctx.absorb(&mut t, sys.world_mut());
    t.note("paper: \"latency of process to process communication in a multi-HUB system is not");
    t.note("significantly higher\" — each extra HUB adds ~store-and-forward of one small packet");
    t
}

fn yesno(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e03_meets_every_goal() {
        let t = e03_latency_goals(&ExpCtx::off());
        for row in &t.rows {
            assert_eq!(row[3], "yes", "goal missed: {row:?}");
        }
    }

    #[test]
    fn e09_switch_in_published_band() {
        let t = e09_kernel_ops(&ExpCtx::off());
        let v: f64 = t.rows[0][2].trim_end_matches(" us").parse().unwrap();
        assert!((10.0..=15.0).contains(&v));
    }

    #[test]
    fn e12_shared_memory_fastest() {
        let t = e12_node_interfaces(&ExpCtx::off());
        let lat = |row: usize, col: usize| -> f64 {
            t.rows[row][col].trim_end_matches(" us").parse().unwrap()
        };
        for col in 1..=3 {
            assert!(lat(0, col) < lat(1, col), "col {col}");
            assert!(lat(1, col) < lat(2, col), "col {col}");
        }
    }

    #[test]
    fn e14_latency_monotone_in_hops() {
        let t = e14_mesh_scaling(&ExpCtx::off());
        let lats: Vec<f64> =
            t.rows.iter().map(|r| r[1].trim_end_matches(" us").parse().unwrap()).collect();
        for w in lats.windows(2) {
            assert!(w[1] >= w[0] - 0.5, "latency should not shrink with distance: {lats:?}");
        }
    }
}
