//! Extension experiments: the paper's stated future work, implemented.
//! E19 — DSM over Nectar (§7); E20 — the VLSI re-implementation
//! projection (§3.2); E21 — Internet protocols over Nectar (§6.2.2).

use crate::experiments::ExpCtx;
use crate::table::{mbit, us, Table};
use nectar_apps::dsm::{run_dsm, DsmConfig};
use nectar_apps::transactions::{run_transactions, TxnConfig};
use nectar_core::node::NodeKind;
use nectar_core::prelude::*;
use nectar_hub::config::HubConfig;
use nectar_proto::header::MAX_FRAGMENT_PAYLOAD;
use nectar_proto::inet::{AddressMap, IpHeader, IpProto, IPV4_HEADER_BYTES};
use nectar_sim::time::Dur;
use std::net::Ipv4Addr;

/// E19 — shared virtual memory with the CAB as OS co-processor (§7).
pub fn e19_dsm(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E19",
        "distributed shared virtual memory over Nectar (§7)",
        &["metric", "context", "measured"],
    );
    let report = run_dsm(&DsmConfig::default(), SystemConfig::default());
    t.row(&[
        "read-fault service (4 KB page)".into(),
        "RPC + page stream".into(),
        format!(
            "mean {:.0} us, max {:.0} us ({} faults)",
            report.read_fault.mean() / 1e3,
            report.read_fault.max() / 1e3,
            report.read_fault.len()
        ),
    ]);
    t.row(&[
        "write-fault service (invalidation + page)".into(),
        "multicast invalidate, then grant".into(),
        format!(
            "mean {:.0} us, max {:.0} us ({} faults)",
            report.write_fault.mean() / 1e3,
            report.write_fault.max() / 1e3,
            report.write_fault.len()
        ),
    ]);
    t.row(&[
        "invalidation multicasts".into(),
        "one packet regardless of sharers".into(),
        format!("{}", report.invalidations),
    ]);
    // The LAN bound: a 4 KB page costs ~4 ms of software+wire.
    let stack = nectar_lan::stack::UnixStackConfig::bsd_1988();
    let lan_page = stack.send_packet(1500) * 3 + stack.recv_packet(1500) * 3;
    t.row(&[
        "same fault on the LAN baseline (bound)".into(),
        "3 MTU frames of software each way".into(),
        format!(">= {}", us(lan_page)),
    ]);
    t.note("sub-millisecond faults make DSM usable; millisecond LAN faults do not");
    t
}

/// E20 — the custom-VLSI re-implementation the paper plans (§3.2).
pub fn e20_vlsi_projection(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E20",
        "VLSI re-implementation projection (§3.1/§3.2)",
        &["metric", "1989 prototype", "VLSI projection"],
    );
    let proto = HubConfig::prototype();
    let vlsi = HubConfig::vlsi();
    t.row(&[
        "crossbar size".into(),
        format!("{}x{} (off-the-shelf)", proto.ports, proto.ports),
        format!("{}x{} (custom VLSI)", vlsi.ports, vlsi.ports),
    ]);
    t.row(&[
        "connection setup + first byte".into(),
        format!("{}", proto.connect_latency() + proto.transit),
        format!("{}", vlsi.connect_latency() + vlsi.transit),
    ]);
    t.row(&[
        "aggregate port bandwidth".into(),
        format!(
            "{:.1} Gbit/s",
            proto.ports as f64 * proto.fiber_bandwidth.as_mbit_per_sec_f64() / 1e3
        ),
        format!(
            "{:.1} Gbit/s",
            vlsi.ports as f64 * vlsi.fiber_bandwidth.as_mbit_per_sec_f64() / 1e3
        ),
    ]);
    // Measured: 24-CAB ring on one VLSI HUB vs three chained prototype
    // HUBs that the same CAB count would need.
    let vlsi_cfg = SystemConfig { hub: vlsi, ..SystemConfig::default() };
    let mut sys = NectarSystem::single_hub(24, vlsi_cfg);
    let agg = sys.measure_ring_aggregate(64 * 1024, 8192);
    let lat = sys.measure_cab_to_cab(0, 12, 64);
    t.row(&[
        "24-CAB ring aggregate (measured)".into(),
        "needs 2+ chained HUBs".into(),
        format!("{} on one HUB", mbit(agg.rate)),
    ]);
    t.row(&[
        "24-CAB latency (measured)".into(),
        "multi-HUB path".into(),
        format!("{} single-HUB", us(lat.latency)),
    ]);
    t.note("projection, not a published artifact: 2x clock, 8x ports, 200 Mbit/s links");
    t.note("software costs keep the CAB, not the HUB, on the latency critical path");
    t
}

/// E21 — IP/TCP/VMTP over Nectar (§6.2.2 future work, implemented).
pub fn e21_ip_over_nectar(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E21",
        "Internet protocols over Nectar (§6.2.2 future work)",
        &["protocol mapping", "encapsulation overhead", "measured end-to-end"],
    );
    let mut arp = AddressMap::new();
    let addr = |cab: u8| Ipv4Addr::new(128, 2, 254, cab);
    for cab in 0..3u8 {
        arp.bind(addr(cab), nectar_cab::board::CabId::new(cab as u16));
    }
    let payload = vec![0xB7u8; 512];
    for (proto, label) in [
        (IpProto::Udp, "UDP/IP over datagram"),
        (IpProto::Tcp, "TCP/IP over byte-stream"),
        (IpProto::Vmtp, "VMTP over request-response"),
    ] {
        let header = IpHeader {
            src: addr(0),
            dst: addr(1),
            proto,
            ttl: 30,
            ident: 7,
            payload_len: payload.len() as u16,
        };
        let datagram = header.encode_with(&payload);
        let dst_cab = arp.resolve(header.dst).expect("bound").index();
        // Fresh system per protocol so receiver-side thread-switch
        // costs are charged identically.
        let mut sys = NectarSystem::single_hub(3, SystemConfig::default());
        let t0 = sys.world().now();
        let before = sys.world().deliveries.len();
        match proto {
            IpProto::Udp => {
                sys.world_mut().send_datagram_now(0, dst_cab, 1, 2, &datagram);
            }
            IpProto::Tcp => {
                sys.world_mut().send_stream_now(0, dst_cab, 1, 2, &datagram);
            }
            IpProto::Vmtp => {
                let tx = sys.world_mut().send_rpc_now(0, dst_cab, 5, 80, &datagram[..512]);
                // VMTP is transactional: the server answers.
                let mut answered = false;
                let deadline = t0 + Dur::from_millis(50);
                while !answered {
                    let next = sys.world().next_event_time().expect("progress");
                    assert!(next <= deadline);
                    sys.world_mut().run_until(next);
                    if sys.world().deliveries.len() > before {
                        sys.world_mut().rpc_respond_now(dst_cab, 0, tx, b"ok");
                        answered = true;
                    }
                }
            }
        }
        let target = before + 1;
        let deadline = t0 + Dur::from_millis(50);
        while sys.world().deliveries.len() < target {
            let next = sys.world().next_event_time().expect("progress");
            assert!(next <= deadline);
            sys.world_mut().run_until(next);
        }
        // Verify the IP datagram decodes at the far end (UDP/TCP paths).
        if proto != IpProto::Vmtp {
            let mb = 2u16;
            let msg = sys.world_mut().mailbox_take(dst_cab, mb).expect("delivered");
            let (h, body) = IpHeader::decode(msg.data()).expect("valid IP datagram");
            assert_eq!(h.proto, proto);
            assert_eq!(body.len(), payload.len());
        }
        let latency = sys.world().deliveries.last().unwrap().at.saturating_since(t0);
        let overhead_pct =
            IPV4_HEADER_BYTES as f64 / (IPV4_HEADER_BYTES + payload.len()) as f64 * 100.0;
        t.row(&[
            label.into(),
            format!("+{IPV4_HEADER_BYTES} B header ({overhead_pct:.1}%)"),
            format!("{} (512 B payload)", us(latency)),
        ]);
    }
    t.row(&[
        "IP fragmentation need".into(),
        format!("MTU = Nectar fragment = {MAX_FRAGMENT_PAYLOAD} B"),
        "handled by the byte-stream below IP".into(),
    ]);
    t.note("the paper planned IP/TCP/VMTP over Nectar 'in the coming year' — this is that layer");
    t
}

/// E22 — heterogeneity: the node kinds of §3.2 (Sun-3, Sun-4, Warp)
/// through each CAB-node interface.
pub fn e22_heterogeneity(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E22",
        "heterogeneous nodes (§2.1/§3.2): 64 B node-to-node latency",
        &["node kind", "shared memory", "socket", "driver"],
    );
    for kind in NodeKind::ALL {
        let mut cells = vec![kind.to_string()];
        for iface in NodeInterface::ALL {
            let cfg = SystemConfig {
                node: nectar_core::node::NodeConfig::for_kind(kind),
                ..SystemConfig::default()
            };
            let mut sys = NectarSystem::single_hub(2, cfg);
            let r = sys.measure_node_to_node(0, 1, 64, iface);
            cells.push(us(r.latency));
        }
        t.row(&cells);
    }
    t.note("the Warp cannot run a protocol stack (driver column) — §1's argument for the CAB:");
    t.note("with off-loading (shared memory) every machine gets the same fast network");
    t
}

/// E23 — Camelot-style distributed transactions (§7).
pub fn e23_transactions(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E23",
        "two-phase commit over Nectar (§7, Camelot)",
        &["metric", "context", "measured"],
    );
    let cfg = TxnConfig::default();
    let report = run_transactions(&cfg, SystemConfig::default());
    t.row(&[
        "transactions committed / aborted".into(),
        format!("{} attempted, 10% abort votes", cfg.transactions),
        format!("{} / {}", report.committed, report.aborted),
    ]);
    t.row(&[
        "commit latency (mean / max)".into(),
        "2 RPC rounds + 2 log forces x 3 participants".into(),
        format!(
            "{:.0} / {:.0} us",
            report.commit_latency.mean() / 1e3,
            report.commit_latency.max() / 1e3
        ),
    ]);
    t.row(&[
        "commit rate".into(),
        "sequential coordinator".into(),
        format!("{:.0} txn/s", report.commit_rate()),
    ]);
    let lan_stack = nectar_lan::stack::UnixStackConfig::bsd_1988();
    let lan_round =
        lan_stack.send_packet(cfg.record_bytes) + lan_stack.recv_packet(cfg.record_bytes);
    t.row(&[
        "LAN bound per RPC round".into(),
        "software only, per participant".into(),
        format!(">= {} x 2 rounds x {} participants", us(lan_round), cfg.participants),
    ]);
    t.note("sub-millisecond distributed commits are the §7 'CAB as OS co-processor' story");
    t
}

/// E24 — automatic task mapping (§6.3 future work): predicted vs
/// measured communication cost for three placement strategies.
pub fn e24_task_mapping(_ctx: &ExpCtx) -> Table {
    use nectar_core::mapping::{
        map_annealed, map_greedy, map_round_robin, predicted_cost, Placement, TaskGraph,
    };
    let mut t = Table::new(
        "E24",
        "automatic task mapping onto a configuration (§6.3)",
        &["strategy", "predicted cost (weight x hops)", "measured traffic makespan"],
    );
    // A vision-like graph: two tight pipelines plus light coordination.
    let mut g = TaskGraph::new();
    let ids: Vec<usize> = (0..8).map(|i| g.add_task(format!("t{i}"))).collect();
    for group in [[0usize, 1, 2, 3], [4, 5, 6, 7]] {
        for w in group.windows(2) {
            g.add_flow(ids[w[0]], ids[w[1]], 40); // heavy pipeline hops
        }
    }
    g.add_flow(ids[0], ids[4], 2); // light coordination
    g.add_flow(ids[3], ids[7], 2);
    // Two clusters of four CABs, one inter-hub link.
    let topo = nectar_core::topology::Topology::mesh2d(1, 2, 4, 16);
    let measure = |placement: &Placement| -> nectar_sim::time::Dur {
        let mut world = nectar_core::world::World::new(topo.clone(), SystemConfig::default());
        let t0 = world.now();
        let mut expected = 0usize;
        for &(a, b, weight) in g.flows() {
            let (ca, cb) = (placement.cab_of[a], placement.cab_of[b]);
            if ca == cb {
                continue; // co-resident: shared CAB memory
            }
            for _ in 0..weight {
                world.send_datagram_now(ca, cb, 1, 2, &[0u8; 900]);
            }
            expected += weight as usize;
        }
        let deadline = t0 + Dur::from_millis(500);
        while world.deliveries.len() < expected {
            let Some(next) = world.next_event_time() else { break };
            if next > deadline {
                break;
            }
            world.run_until(next);
        }
        world.deliveries.last().map_or(Dur::ZERO, |d| d.at.saturating_since(t0))
    };
    for (label, placement) in [
        ("round-robin", map_round_robin(&g, &topo)),
        ("greedy (max-adjacency)", map_greedy(&g, &topo, 4)),
        ("simulated annealing", map_annealed(&g, &topo, 4, 4000, 17)),
    ] {
        let cost = predicted_cost(&g, &topo, &placement);
        let makespan = measure(&placement);
        t.row(&[label.into(), format!("{cost}"), us(makespan)]);
    }
    t.note("the predicted ordering must match the measured ordering — the mapper's whole point");
    t.note("co-resident tasks communicate through shared CAB memory at zero network cost");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_faults_are_sub_millisecond() {
        let t = e19_dsm(&ExpCtx::off());
        assert!(t.rows[0][2].contains("mean"), "{:?}", t.rows[0]);
    }

    #[test]
    fn e20_vlsi_is_faster_and_wider() {
        let t = e20_vlsi_projection(&ExpCtx::off());
        assert!(t.rows[0][2].contains("128x128"));
    }

    #[test]
    fn e24_prediction_matches_measurement_ordering() {
        let t = e24_task_mapping(&ExpCtx::off());
        let cost = |r: usize| -> u64 { t.rows[r][1].parse().unwrap() };
        let span = |r: usize| -> f64 { t.rows[r][2].trim_end_matches(" us").parse().unwrap() };
        // Greedy and annealed predict (and measure) no worse than
        // round-robin.
        assert!(cost(1) <= cost(0));
        assert!(cost(2) <= cost(1));
        assert!(span(1) <= span(0) * 1.05, "{} vs {}", span(1), span(0));
    }

    #[test]
    fn e22_warp_driver_is_catastrophic() {
        let t = e22_heterogeneity(&ExpCtx::off());
        let warp_sm: f64 = t.rows[2][1].trim_end_matches(" us").parse().unwrap();
        let warp_drv: f64 = t.rows[2][3].trim_end_matches(" us").parse().unwrap();
        assert!(warp_drv > 10.0 * warp_sm, "offload must rescue the Warp: {warp_sm} vs {warp_drv}");
    }

    #[test]
    fn e23_commits_under_a_millisecond() {
        let t = e23_transactions(&ExpCtx::off());
        assert!(t.rows[1][2].contains("us"));
    }

    #[test]
    fn e21_all_mappings_deliver() {
        let t = e21_ip_over_nectar(&ExpCtx::off());
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows[..3] {
            assert!(row[2].contains("us"), "{row:?}");
        }
    }
}
