//! The experiment registry: every table and figure of the paper's
//! evaluation, one function each. See DESIGN.md §4 for the index.

pub mod apps_exp;
pub mod chaos_exp;
pub mod comparison;
pub mod extensions;
pub mod hub_level;
pub mod latency;
pub mod scale;
pub mod throughput;
pub mod transport_exp;
pub mod workload_exp;

use crate::table::Table;
use nectar_core::shard::ShardedWorld;
use nectar_core::world::World;
use nectar_sim::metrics::MetricsRegistry;

/// What the harness wants an experiment to collect beyond its table.
/// Passed to every runner; [`ExpCtx::off`] is the plain-report default.
#[derive(Clone, Debug, Default)]
pub struct ExpCtx {
    /// Harvest a [`nectar_sim::metrics::MetricsRegistry`] from every
    /// world the experiment drives.
    pub metrics: bool,
    /// Capture the flight-recorder event stream for a Chrome trace.
    pub trace: bool,
    /// Override the chaos experiments' fault-schedule seed
    /// (`report --chaos-seed`): replay a campaign failure exactly.
    pub chaos_seed: Option<u64>,
    /// Override the fault program itself (`report --chaos-spec`,
    /// the [`nectar_sim::chaos`] clause grammar). Used with
    /// [`chaos_seed`](ExpCtx::chaos_seed); wins over the generated
    /// schedule.
    pub chaos_spec: Option<String>,
    /// Override the traffic scenario for the workload experiments (the
    /// `e27` family; `report --workload SPEC|PRESET`): either a
    /// registered preset name or an inline
    /// [`nectar_sim::workload`] spec. Validated by the CLI before any
    /// experiment runs.
    pub workload: Option<String>,
    /// Shard count for the conservative-parallel experiments (the
    /// `e26` scale family; `report --shards N`). `0` and `1` both mean
    /// sequential execution; counts above a topology's HUB count are
    /// clamped by the [`ShardPlan`](nectar_core::shard::ShardPlan).
    pub shards: usize,
    /// Attach a streaming doctor to every world (`report --stream`):
    /// telemetry folds incrementally instead of being kept for a
    /// post-hoc pass, so rings never fill and analysis memory stays
    /// bounded no matter the run length.
    pub stream: bool,
    /// Resize every telemetry ring before traffic flows
    /// (`report --telemetry-cap N`). Mainly for demonstrating that
    /// streaming survives capacities the post-hoc path cannot.
    pub telemetry_cap: Option<usize>,
    /// Hard cap on the streaming fold's estimated footprint in bytes
    /// (`report --stream-budget BYTES`); see
    /// [`StreamConfig::memory_budget`].
    ///
    /// [`StreamConfig::memory_budget`]: nectar_sim::analysis::streaming::StreamConfig::memory_budget
    pub stream_budget: Option<usize>,
    /// Collect a host-time profile from every sharded world
    /// (`report --profile`): phase spans per shard worker, straggler
    /// attribution, efficiency/Karp–Flatt estimates, and a ranked
    /// scaling-doctor verdict. Purely observational — simulated
    /// metrics stay bit-identical with this on or off.
    pub profile: bool,
}

impl ExpCtx {
    /// No collection: the experiment produces only its table.
    pub fn off() -> ExpCtx {
        ExpCtx::default()
    }

    /// `true` when the experiment should switch the flight recorder on.
    pub fn observing(&self) -> bool {
        self.metrics || self.trace || self.stream
    }

    /// The [`StreamConfig`](nectar_sim::analysis::streaming::StreamConfig)
    /// a `--stream` run attaches: defaults plus the CLI memory budget.
    fn stream_config(&self) -> nectar_sim::analysis::streaming::StreamConfig {
        nectar_sim::analysis::streaming::StreamConfig {
            memory_budget: self.stream_budget,
            ..Default::default()
        }
    }

    /// Arms a freshly built world, before any traffic flows.
    pub fn prepare(&self, world: &mut World) {
        if let Some(cap) = self.telemetry_cap {
            world.set_telemetry_capacity(cap);
        }
        if self.stream {
            world.attach_streaming(self.stream_config());
        } else if self.observing() {
            world.enable_observability();
        }
    }

    /// [`prepare`](ExpCtx::prepare) for a sharded world.
    pub fn prepare_sharded(&self, world: &mut ShardedWorld) {
        if let Some(cap) = self.telemetry_cap {
            world.set_telemetry_capacity(cap);
        }
        if self.stream {
            world.attach_streaming(self.stream_config());
        } else if self.observing() {
            world.enable_observability();
        }
        if self.profile {
            world.enable_profiling();
        }
    }

    /// The effective shard count (`0` means "not set" → sequential).
    pub fn shard_count(&self) -> usize {
        self.shards.max(1)
    }

    /// Harvests a world into the table: metrics merge (so experiments
    /// driving several worlds accumulate), trace events append, the
    /// streaming doctor (when attached) is detached into its final
    /// report, and capture pressure lands in the runtime registry.
    pub fn absorb(&self, table: &mut Table, world: &mut World) {
        let reg = (self.metrics || self.stream).then(|| world.metrics());
        if self.stream {
            if let Some(doctor) = world.finish_streaming() {
                let summary = doctor.summary();
                let report = doctor.into_report(reg.as_ref());
                table.absorb_stream(&summary, &report);
            }
        }
        if self.metrics {
            if let Some(m) = reg {
                match &mut table.metrics {
                    Some(t) => t.merge(&m),
                    None => table.metrics = Some(m),
                }
            }
            self.absorb_pressure(table, world.telemetry_pressure());
        }
        if self.trace {
            table.trace.extend(world.telemetry_events());
        }
    }

    /// [`absorb`](ExpCtx::absorb) for a sharded world: identical
    /// semantics, because the sharded metrics registry and the
    /// canonically sorted telemetry stream are bit-identical to a
    /// sequential run's (the determinism contract of DESIGN.md §11) —
    /// plus the runner's own counters into the runtime registry.
    pub fn absorb_sharded(&self, table: &mut Table, world: &mut ShardedWorld) {
        let reg = (self.metrics || self.stream).then(|| world.metrics());
        if self.stream {
            if let Some(doctor) = world.finish_streaming() {
                let summary = doctor.summary();
                let report = doctor.into_report(reg.as_ref());
                table.absorb_stream(&summary, &report);
            }
        }
        if self.metrics {
            if let Some(m) = reg {
                match &mut table.metrics {
                    Some(t) => t.merge(&m),
                    None => table.metrics = Some(m),
                }
            }
            let rt = table.runtime.get_or_insert_with(MetricsRegistry::new);
            rt.merge(&world.runtime_metrics());
            self.absorb_pressure(table, world.telemetry_pressure());
        }
        if self.trace {
            table.trace.extend(world.telemetry_events());
        }
        if self.profile {
            // An experiment may drive several sharded worlds (e.g. a
            // determinism rerun); the profile kept is the last
            // absorbed one — the measured run, by convention.
            table.profile = world.profile_analysis();
            if self.trace {
                table.host_profile = world.host_profile();
            }
        }
    }

    /// Records the telemetry capture-pressure pair into the table's
    /// runtime registry. The high-water mark is per-ring and therefore
    /// shard-variant, which is exactly why it lives here and not in
    /// the bit-compared `metrics` object.
    fn absorb_pressure(&self, table: &mut Table, pressure: (u64, u64)) {
        let (hwm, dropped) = pressure;
        let rt = table.runtime.get_or_insert_with(MetricsRegistry::new);
        rt.gauge_max("telemetry.ring_hwm", hwm as f64);
        rt.counter_add("telemetry.dropped_events", dropped);
    }
}

/// One registry entry: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn(&ExpCtx) -> Table);

/// Experiments that honor [`ExpCtx::trace`] (they call
/// [`ExpCtx::absorb`] on their worlds). `report --trace` and the
/// exporter validation in CI loop over exactly this list; an experiment
/// that starts absorbing telemetry should be added here so its trace
/// gets validated too (a registry test enforces the list stays honest).
pub const TRACEABLE: &[&str] = &[
    "e03", "e05", "e06", "e07", "e12", "e14", "e25", "e25b", "e25c", "e26", "e26b", "e27", "e27c",
];

/// All experiments in DESIGN.md order.
pub fn registry() -> Vec<Experiment> {
    vec![
        ("e01", "HUB latency & pipelining", hub_level::e01_hub_latency as fn(&ExpCtx) -> Table),
        ("e02", "controller switching rate", hub_level::e02_switch_rate),
        ("e03", "latency goals (§2.3)", latency::e03_latency_goals),
        ("e04", "aggregate bandwidth", throughput::e04_aggregate_bandwidth),
        ("e05", "Fig. 7 circuit walk", hub_level::e05_fig7_circuit),
        ("e06", "multicast vs unicast", hub_level::e06_multicast),
        ("e07", "packet vs circuit switching", hub_level::e07_circuit_vs_packet),
        ("e08", "Nectar vs LAN", comparison::e08_lan_comparison),
        ("e09", "kernel operation costs", latency::e09_kernel_ops),
        ("e10", "transport protocols", transport_exp::e10_transports),
        ("e10b", "loss recovery", transport_exp::e10_loss_recovery),
        ("e10c", "window sweep", transport_exp::e10_window_sweep),
        ("e10d", "RPC under loss", transport_exp::e10_rpc_loss),
        ("e11", "packet pipeline", throughput::e11_packet_pipeline),
        ("e12", "CAB-node interfaces", latency::e12_node_interfaces),
        ("e13", "CAB memory system", throughput::e13_cab_memory),
        ("e14", "mesh scaling", latency::e14_mesh_scaling),
        ("e15", "contention vs LAN", comparison::e15_contention),
        ("e16", "vision application", apps_exp::e16_vision),
        ("e16b", "scientific kernels", apps_exp::e16b_scientific),
        ("e17", "production system", apps_exp::e17_production),
        ("e18", "CAB full duplex", throughput::e18_full_duplex),
        ("e19", "shared virtual memory", extensions::e19_dsm),
        ("e20", "VLSI projection", extensions::e20_vlsi_projection),
        ("e21", "IP over Nectar", extensions::e21_ip_over_nectar),
        ("e22", "heterogeneous nodes", extensions::e22_heterogeneity),
        ("e23", "distributed transactions", extensions::e23_transactions),
        ("e24", "automatic task mapping", extensions::e24_task_mapping),
        ("e25", "chaos: byte streams", chaos_exp::e25_stream_chaos),
        ("e25b", "chaos: request-response", chaos_exp::e25b_rpc_chaos),
        ("e25c", "chaos: mesh", chaos_exp::e25c_mesh_chaos),
        ("e26", "scale: sharded fat-star", scale::e26_fat_star),
        ("e26b", "scale: sharded 4x4 mesh", scale::e26b_mesh),
        ("e27", "workload: lattice collective", workload_exp::e27_lattice),
        ("e27b", "workload: spike stream", workload_exp::e27b_spike),
        ("e27c", "workload: RPC fan-out", workload_exp::e27c_rpc_fanout),
        ("abl", "design ablations", apps_exp::ablations),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<_> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
    }

    #[test]
    fn traceable_experiments_produce_traces() {
        let reg = registry();
        let ctx = ExpCtx { trace: true, ..ExpCtx::off() };
        for id in TRACEABLE {
            let (_, _, run) =
                reg.iter().find(|(rid, _, _)| rid == id).expect("TRACEABLE id is registered");
            let table = run(&ctx);
            assert!(!table.trace.is_empty(), "{id} is listed TRACEABLE but produced no events");
        }
    }
}
