//! E27 — the workload scenario library: spec-driven traffic against
//! the full simulated system, with the doctor's verdict as the
//! pass/fail criterion.
//!
//! Where the e26 family schedules its sends up front, the e27 family
//! drives a [`nectar_sim::workload`] generator off the engine clock:
//! open-loop arrival processes and closed-loop token circulation,
//! with per-(class, CAB) RNG streams so the offered load is
//! bit-identical at any shard count. Each experiment defaults to one
//! registered preset and honors `report --workload SPEC|PRESET` as an
//! override (the CLI validates the grammar before anything runs).
//!
//! The scenario verdict is structural, not a wall-clock number: zero
//! HUB drops, zero mailbox rejects, and — when the streaming doctor
//! rode along (`--stream`) — a confident capture with no critical
//! findings (retransmit storm, head-of-line blocking, mailbox
//! saturation, silent drops). The verdict lands in the table notes and
//! in `BENCH_sim.json`, so CI can gate on it.

use crate::experiments::ExpCtx;
use crate::table::Table;
use nectar_core::prelude::*;
use nectar_sim::time::Time;
use nectar_sim::workload::{preset, Shape, WorkloadSpec};
use std::time::Instant;

/// Simulated-time drain deadline: generous against every preset's
/// traffic window (4 ms at most) plus in-flight tail.
const DEADLINE: Time = Time::from_millis(100);

/// Seed an inline `--workload` spec is parsed with. Presets carry
/// their own seeds; a raw spec needs one, and a fixed value keeps the
/// replayability story simple: same flag, same traffic.
const INLINE_SPEC_SEED: u64 = 0xE27;

/// Resolves the scenario: the `--workload` override (preset name, then
/// inline spec) wins over the experiment's default preset.
fn resolve(ctx: &ExpCtx, default_preset: &str) -> WorkloadSpec {
    match &ctx.workload {
        Some(w) => preset(w).unwrap_or_else(|| {
            WorkloadSpec::parse(INLINE_SPEC_SEED, w).unwrap_or_else(|e| panic!("--workload: {e}"))
        }),
        None => preset(default_preset).expect("default preset is registered"),
    }
}

/// The standing closed-loop population `spec` puts on `cabs` sources
/// (open-loop classes contribute no standing tokens).
fn standing_flows(spec: &WorkloadSpec, cabs: usize) -> u64 {
    spec.classes
        .iter()
        .map(|c| match c.shape {
            Shape::Closed { tokens, .. } => tokens as u64 * cabs as u64,
            Shape::Open { .. } => 0,
        })
        .sum()
}

/// One timed scenario run at `shards` shards. Only the `absorb` run
/// feeds the table's metrics/trace/stream so a reference run never
/// double-counts.
fn timed_run(
    topo: &Topology,
    spec: &WorkloadSpec,
    shards: usize,
    ctx: &ExpCtx,
    table: &mut Table,
    absorb: bool,
) -> (u64, f64, String) {
    let t0 = Instant::now();
    let mut world = ShardedWorld::new(topo.clone(), SystemConfig::default(), shards);
    ctx.prepare_sharded(&mut world);
    world.set_workload(spec).unwrap_or_else(|e| panic!("{}: workload rejected: {e}", table.id));
    let (events, _) = world.run_to_quiescence(DEADLINE);
    let wall_s = t0.elapsed().as_secs_f64();
    let fingerprint = world.metrics().to_json();
    if absorb {
        ctx.absorb_sharded(table, &mut world);
    } else if ctx.stream {
        world.finish_streaming();
    }
    (events, wall_s, fingerprint)
}

/// Sums a per-CAB counter family from the table's harvested metrics.
fn summed(table: &Table, cabs: usize, suffix: &str) -> Option<u64> {
    let m = table.metrics.as_ref()?;
    Some((0..cabs).map(|c| m.counter(&format!("cab{c}.{suffix}"))).sum())
}

/// Appends the scenario's pass/fail note. Structural criteria only:
/// silent-drop counters from the metrics registry, plus the streaming
/// doctor's confidence and critical findings when one rode along.
fn verdict_note(table: &mut Table, topo: &Topology) {
    let Some(m) = table.metrics.as_ref() else {
        table.note("scenario verdict: not evaluated (run with --metrics or --doctor)");
        return;
    };
    let hub_drops: u64 = (0..topo.hub_count())
        .map(|h| m.counter(&format!("hub{h}.drops")) + m.counter(&format!("hub{h}.overflows")))
        .sum();
    let rejects = summed(table, topo.cab_count(), "mailbox_rejects").expect("metrics present");
    let mut failures = Vec::new();
    if hub_drops > 0 {
        failures.push(format!("{hub_drops} HUB drops/overflows"));
    }
    if rejects > 0 {
        failures.push(format!("{rejects} mailbox rejects"));
    }
    if let Some(s) = &table.stream {
        if !s.confident {
            failures.push("doctor capture truncated (not confident)".to_string());
        }
        for f in &s.findings {
            if f.severity == nectar_sim::analysis::pathology::Severity::Critical {
                failures.push(format!("critical finding: {} at {}", f.detector, f.subject));
            }
        }
    }
    if failures.is_empty() {
        table.note(format!(
            "scenario verdict: PASS — 0 drops, 0 rejects{}",
            if table.stream.is_some() { ", doctor confident, no critical findings" } else { "" }
        ));
    } else {
        table.note(format!("scenario verdict: FAIL — {}", failures.join("; ")));
    }
}

/// Shared runner: the scenario at `ctx.shards`, plus (when parallel)
/// the 1-shard reference and the determinism diff, then the verdict.
fn run_workload(
    id: &'static str,
    title: &str,
    topo: Topology,
    default_preset: &str,
    ctx: &ExpCtx,
) -> Table {
    let spec = resolve(ctx, default_preset);
    let mut table = Table::new(
        id,
        title.to_string(),
        &["scenario", "shards", "flows offered", "events", "wall", "events/sec"],
    );
    let shards = ctx.shard_count().min(topo.hub_count());
    let scenario = match &ctx.workload {
        Some(w) if preset(w).is_some() => format!("preset {w}"),
        Some(_) => "inline spec".to_string(),
        None => format!("preset {default_preset}"),
    };

    let (events, wall, fingerprint) = timed_run(&topo, &spec, shards, ctx, &mut table, true);
    table.record_events(events);
    let flows = summed(&table, topo.cab_count(), "workload.flows");
    let eps = events as f64 / wall.max(1e-9);
    table.row(&[
        scenario.clone(),
        shards.to_string(),
        flows.map_or_else(|| "-".to_string(), |f| f.to_string()),
        events.to_string(),
        format!("{:.1} ms", wall * 1e3),
        format!("{eps:.0}"),
    ]);
    let standing = standing_flows(&spec, topo.cab_count());
    table.note(format!(
        "{} classes, {standing} standing closed-loop flows on {} CABs / {} HUBs",
        spec.classes.len(),
        topo.cab_count(),
        topo.hub_count()
    ));

    if shards > 1 {
        let (ref_events, ref_wall, ref_fingerprint) =
            timed_run(&topo, &spec, 1, ctx, &mut table, false);
        table.record_events(ref_events);
        let ref_eps = ref_events as f64 / ref_wall.max(1e-9);
        table.row(&[
            scenario,
            "1 (reference)".to_string(),
            "-".to_string(),
            ref_events.to_string(),
            format!("{:.1} ms", ref_wall * 1e3),
            format!("{ref_eps:.0}"),
        ]);
        if ref_events != events {
            table.note(format!(
                "DETERMINISM VIOLATED: {events} events at {shards} shards vs {ref_events} at 1"
            ));
        } else if fingerprint != ref_fingerprint {
            table.note(format!(
                "DETERMINISM VIOLATED: metrics registries differ between 1 and {shards} shards"
            ));
        } else {
            table.note(format!("determinism: metrics bit-identical across 1 and {shards} shards"));
        }
    }
    verdict_note(&mut table, &topo);
    table
}

/// E27: the lattice-collective preset on the e26b mesh — QCDSP-style
/// nearest-neighbor halo exchange plus an all-reduce ring of byte
/// streams.
pub fn e27_lattice(ctx: &ExpCtx) -> Table {
    run_workload(
        "e27",
        "workload: lattice collective on a 4x4 mesh (64 CABs)",
        Topology::mesh2d(4, 4, 4, 16),
        "lattice",
        ctx,
    )
}

/// E27b: the spike-stream preset on the e26b mesh — 1600 closed-loop
/// tokens per CAB, a standing population above 10^5 concurrent flows
/// on 64 CABs. The bounded-memory acceptance run in CI drives exactly
/// this experiment under `--stream`.
pub fn e27b_spike(ctx: &ExpCtx) -> Table {
    run_workload(
        "e27b",
        "workload: spike stream on a 4x4 mesh (10^5 flows)",
        Topology::mesh2d(4, 4, 4, 16),
        "spike",
        ctx,
    )
}

/// E27c: the datacenter RPC fan-out preset on the e26 fat-star — a hot
/// service behind a hotspot matrix plus open-loop background
/// datagrams.
pub fn e27c_rpc_fanout(ctx: &ExpCtx) -> Table {
    run_workload(
        "e27c",
        "workload: RPC fan-out on an 8-leaf fat-star (64 CABs)",
        Topology::fat_star(8, 8, 16),
        "rpc-fanout",
        ctx,
    )
}
