//! E26 — conservative-parallel scale: one simulated Nectar on all
//! cores, bit-identical to the sequential run.
//!
//! The paper's network is parallel in space: HUB clusters joined by
//! fibers whose minimum transit latency lower-bounds cross-cluster
//! influence. The `e26` family builds the two topologies where that
//! structure is big enough to matter — an 8-leaf fat-star and a 4×4
//! mesh, 64 CABs each — floods them with mostly cluster-local stream
//! traffic, and runs the same workload on a
//! [`ShardedWorld`](nectar_core::shard::ShardedWorld) at
//! `report --shards N`.
//!
//! When `--shards` exceeds one, each experiment also runs the 1-shard
//! reference in the same process, reports the speedup, and diffs the
//! two metrics registries. A mismatch prints `DETERMINISM VIOLATED`
//! in the table notes — CI greps for exactly that string, so a window
//! protocol bug can never hide behind a good-looking speedup number.

use crate::experiments::ExpCtx;
use crate::table::Table;
use nectar_core::prelude::*;
use nectar_core::world::AppSend;
use nectar_sim::chaos::{ChaosSchedule, Clause, Fault};
use nectar_sim::time::Time;
use std::sync::Arc;
use std::time::Instant;

/// Traffic rounds per run. Sized so a run is long enough to measure
/// (about a million simulation events on the 64-CAB topologies) yet
/// quick enough for CI.
const ROUNDS: u64 = 24;

/// A dense, schedule-upfront stream workload over `topo`: every CAB
/// streams to a rotating neighbour on its own HUB each round, and
/// every third CAB also streams to its counterpart half the system
/// away (cross-HUB, and under sharding cross-shard). The mix mirrors
/// the locality argument of the paper — most traffic stays inside a
/// cluster, the backbone carries the rest — and gives every shard
/// enough same-window work to amortize the barrier.
fn scaled_workload(topo: &Topology) -> Vec<(Time, usize, AppSend)> {
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); topo.hub_count()];
    for c in 0..topo.cab_count() {
        clusters[topo.cab_attachment(c).0].push(c);
    }
    clusters.retain(|m| !m.is_empty());
    let mut sends = Vec::new();
    for round in 0..ROUNDS {
        let at = Time::from_micros(3 + 15 * round);
        for (ci, members) in clusters.iter().enumerate() {
            for (mi, &src) in members.iter().enumerate() {
                if members.len() > 1 {
                    let dst = members[(mi + 1 + round as usize) % members.len()];
                    if dst != src {
                        let data: Arc<[u8]> =
                            vec![(src as u64 * 13 + round) as u8; 640 + 96 * (round as usize % 3)]
                                .into();
                        sends.push((
                            at,
                            src,
                            AppSend::Stream { dst, src_mailbox: 1, dst_mailbox: 40, data },
                        ));
                    }
                }
                if clusters.len() > 1 && mi % 3 == 0 {
                    let far = &clusters[(ci + clusters.len() / 2) % clusters.len()];
                    let dst = far[mi % far.len()];
                    if dst != src {
                        let data: Arc<[u8]> = vec![(src as u64 + 7 * round) as u8; 512].into();
                        sends.push((
                            at,
                            src,
                            AppSend::Stream { dst, src_mailbox: 1, dst_mailbox: 41, data },
                        ));
                    }
                }
            }
        }
    }
    sends
}

/// One timed run's measurements, before any table formatting.
struct TimedRun {
    /// Simulation events processed.
    events: u64,
    /// Wall-clock seconds.
    wall_s: f64,
    /// Metrics JSON — the determinism fingerprint.
    fingerprint: String,
    /// Runner counters (windows, barrier wait, exchanged events).
    runtime: nectar_sim::metrics::MetricsRegistry,
    /// Scaling-doctor analysis, when the ctx asked for `--profile`.
    profile: Option<nectar_sim::profile::ProfileAnalysis>,
}

/// One timed run of the workload at `shards` shards. Only the `absorb`
/// run feeds the table's metrics/trace so a reference run never
/// double-counts.
fn timed_run(
    topo: &Topology,
    sends: &[(Time, usize, AppSend)],
    shards: usize,
    chaos: Option<&ChaosSchedule>,
    ctx: &ExpCtx,
    table: &mut Table,
    absorb: bool,
) -> TimedRun {
    let t0 = Instant::now();
    let mut world = ShardedWorld::new(topo.clone(), SystemConfig::default(), shards);
    // Both the measured run and the 1-shard reference get the same
    // capture setup (including streaming): draining rings changes the
    // `telemetry.dropped_events` counter under tight capacities, and
    // the determinism diff must compare like with like.
    ctx.prepare_sharded(&mut world);
    if let Some(s) = chaos {
        world.set_chaos(s.clone());
    }
    for (at, cab, send) in sends {
        world.schedule_send(*at, *cab, send.clone());
    }
    let (events, _) = world.run_to_quiescence(Time::from_millis(100));
    let wall_s = t0.elapsed().as_secs_f64();
    let fingerprint = world.metrics().to_json();
    assert!(
        chaos.is_some() || world.transport_quiescent(),
        "{}: scale workload failed to drain — deadline too tight",
        table.id
    );
    let profile = world.profile_analysis();
    if absorb {
        ctx.absorb_sharded(table, &mut world);
    } else if ctx.stream {
        // The reference run streams too (same capture setup), but its
        // doctor's verdict is redundant — just detach it.
        world.finish_streaming();
    }
    TimedRun { events, wall_s, fingerprint, runtime: world.runtime_metrics(), profile }
}

/// Shared runner: main run at `ctx.shards`, plus (when parallel) the
/// 1-shard reference, speedup note, and the determinism diff.
fn run_scale(id: &'static str, title: &str, topo: Topology, ctx: &ExpCtx) -> Table {
    let mut table =
        Table::new(id, title.to_string(), &["config", "shards", "events", "wall", "events/sec"]);
    let cabs = topo.cab_count();
    let hubs = topo.hub_count();
    let shards = ctx.shard_count().min(hubs);
    let sends = scaled_workload(&topo);
    let config = format!("{hubs} HUBs / {cabs} CABs / {} sends", sends.len());

    let run = timed_run(&topo, &sends, shards, None, ctx, &mut table, true);
    let (events, wall, fingerprint, runtime) =
        (run.events, run.wall_s, run.fingerprint, run.runtime);
    table.record_events(events);
    let eps = events as f64 / wall.max(1e-9);
    table.row(&[
        config.clone(),
        shards.to_string(),
        events.to_string(),
        format!("{:.1} ms", wall * 1e3),
        format!("{eps:.0}"),
    ]);

    if shards > 1 {
        let (windows, wait_ns, exchanged) = (
            runtime.counter("runner.windows"),
            runtime.counter("runner.barrier_wait_ns"),
            runtime.counter("runner.exchanged_events"),
        );
        table.note(format!(
            "runner: {windows} windows, {:.1} ms total barrier wait, \
             {exchanged} cross-shard events exchanged",
            wait_ns as f64 / 1e6
        ));
        let reference = timed_run(&topo, &sends, 1, None, ctx, &mut table, false);
        let (ref_events, ref_wall, ref_fingerprint) =
            (reference.events, reference.wall_s, reference.fingerprint);
        table.record_events(ref_events);
        let ref_eps = ref_events as f64 / ref_wall.max(1e-9);
        table.row(&[
            config,
            "1 (reference)".to_string(),
            ref_events.to_string(),
            format!("{:.1} ms", ref_wall * 1e3),
            format!("{ref_eps:.0}"),
        ]);
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        table.note(format!(
            "speedup at {shards} shards: {:.2}x events/sec ({cores}-core host{})",
            eps / ref_eps,
            if cores < shards { "; shards oversubscribed, no speedup possible" } else { "" }
        ));
        if ref_events != events {
            table.note(format!(
                "DETERMINISM VIOLATED: {events} events at {shards} shards vs {ref_events} at 1"
            ));
        } else if fingerprint != ref_fingerprint {
            table.note(format!(
                "DETERMINISM VIOLATED: metrics registries differ between 1 and {shards} shards"
            ));
        } else {
            table.note(format!("determinism: metrics bit-identical across 1 and {shards} shards"));
        }
    }
    let lookahead = SystemConfig::default().hub.lookahead();
    table.note(format!(
        "conservative window: HubConfig::lookahead() = {} ns per round",
        lookahead.nanos()
    ));
    table
}

/// E26: 8-leaf fat-star (a root HUB fanning out to 8 leaf HUBs, 8
/// CABs each — 64 CABs). Leaf-local traffic dominates; the root
/// carries the cross-leaf flows, exactly the shape where sharding by
/// HUB cluster should pay.
pub fn e26_fat_star(ctx: &ExpCtx) -> Table {
    run_scale("e26", "scale: sharded fat-star (64 CABs)", Topology::fat_star(8, 8, 16), ctx)
}

/// E26b: 4×4 mesh of HUBs, 4 CABs each (64 CABs). The mesh has no
/// privileged root, so cross-shard edges appear on every side of
/// every contiguous block — the stress case for the window barrier.
pub fn e26b_mesh(ctx: &ExpCtx) -> Table {
    run_scale("e26b", "scale: sharded 4x4 mesh (64 CABs)", Topology::mesh2d(4, 4, 4, 16), ctx)
}

/// One measured point on the speedup curve produced by
/// [`scaling_sweep`].
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Experiment id (`e26`, `e26b`).
    pub experiment: &'static str,
    /// Human-readable topology description.
    pub topology: &'static str,
    /// Shard count this point ran at (clamped to the HUB count).
    pub shards: usize,
    /// Whether the run carried the sweep's chaos schedule.
    pub chaos: bool,
    /// Simulation events processed.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// YAWNS windows executed (0 for the 1-shard run, which skips the
    /// window protocol entirely).
    pub windows: u64,
    /// Total nanoseconds all shards spent waiting at barriers.
    pub barrier_wait_ns: u64,
    /// Cross-shard events moved through the batched exchange.
    pub exchanged_events: u64,
    /// Whether this point's metrics registry is bit-identical to the
    /// 1-shard reference for the same topology and schedule.
    pub deterministic: bool,
    /// Host-time bottleneck attribution for this point — per-shard
    /// phase breakdown, parallel efficiency, Karp–Flatt estimate, and
    /// the scaling doctor's ranked verdict. Present when the sweep ran
    /// with profiling on.
    pub profile: Option<nectar_sim::profile::ProfileAnalysis>,
}

/// Measures the speedup curve behind `report --scaling`: each e26
/// topology, clean and under a fixed chaos schedule, at every shard
/// count in `shard_counts` (deduplicated, clamped to the HUB count, 1
/// always included as the reference). Every multi-shard point is
/// bit-compared against the 1-shard reference — the curve is only
/// worth plotting if it measures the *same* computation at every x.
/// With `profile` set, every point also carries the scaling doctor's
/// bottleneck attribution (the determinism diff proves profiling does
/// not perturb the simulated results).
pub fn scaling_sweep(shard_counts: &[usize], profile: bool) -> Vec<ScalingPoint> {
    let chaos = ChaosSchedule::new(0xC0FFEE)
        .with(Clause::new(Fault::Loss { rate: 0.02 }))
        .with(Clause::new(Fault::Duplicate { rate: 0.01 }));
    let topologies: [(&'static str, &'static str, Topology); 2] = [
        ("e26", "fat_star(8,8,16)", Topology::fat_star(8, 8, 16)),
        ("e26b", "mesh2d(4,4,4,16)", Topology::mesh2d(4, 4, 4, 16)),
    ];
    let ctx = ExpCtx { shards: 1, profile, ..ExpCtx::default() };
    let mut points = Vec::new();
    for (id, desc, topo) in topologies {
        let hubs = topo.hub_count();
        let mut counts: Vec<usize> =
            shard_counts.iter().map(|&s| s.clamp(1, hubs)).chain(std::iter::once(1)).collect();
        counts.sort_unstable();
        counts.dedup();
        let sends = scaled_workload(&topo);
        for use_chaos in [false, true] {
            let schedule = use_chaos.then_some(&chaos);
            let mut reference: Option<String> = None;
            for &shards in &counts {
                let mut scratch = Table::new(id, "scaling sweep", &[]);
                let run = timed_run(&topo, &sends, shards, schedule, &ctx, &mut scratch, false);
                let deterministic = match &reference {
                    None => {
                        reference = Some(run.fingerprint);
                        true
                    }
                    Some(r) => *r == run.fingerprint,
                };
                points.push(ScalingPoint {
                    experiment: id,
                    topology: desc,
                    shards,
                    chaos: use_chaos,
                    events: run.events,
                    wall_s: run.wall_s,
                    windows: run.runtime.counter("runner.windows"),
                    barrier_wait_ns: run.runtime.counter("runner.barrier_wait_ns"),
                    exchanged_events: run.runtime.counter("runner.exchanged_events"),
                    deterministic,
                    profile: run.profile,
                });
            }
        }
    }
    points
}
