//! E26 — conservative-parallel scale: one simulated Nectar on all
//! cores, bit-identical to the sequential run.
//!
//! The paper's network is parallel in space: HUB clusters joined by
//! fibers whose minimum transit latency lower-bounds cross-cluster
//! influence. The `e26` family builds the two topologies where that
//! structure is big enough to matter — an 8-leaf fat-star and a 4×4
//! mesh, 64 CABs each — floods them with mostly cluster-local stream
//! traffic, and runs the same workload on a
//! [`ShardedWorld`](nectar_core::shard::ShardedWorld) at
//! `report --shards N`.
//!
//! When `--shards` exceeds one, each experiment also runs the 1-shard
//! reference in the same process, reports the speedup, and diffs the
//! two metrics registries. A mismatch prints `DETERMINISM VIOLATED`
//! in the table notes — CI greps for exactly that string, so a window
//! protocol bug can never hide behind a good-looking speedup number.

use crate::experiments::ExpCtx;
use crate::table::Table;
use nectar_core::prelude::*;
use nectar_core::world::AppSend;
use nectar_sim::time::Time;
use std::sync::Arc;
use std::time::Instant;

/// Traffic rounds per run. Sized so a run is long enough to measure
/// (about a million simulation events on the 64-CAB topologies) yet
/// quick enough for CI.
const ROUNDS: u64 = 24;

/// A dense, schedule-upfront stream workload over `topo`: every CAB
/// streams to a rotating neighbour on its own HUB each round, and
/// every third CAB also streams to its counterpart half the system
/// away (cross-HUB, and under sharding cross-shard). The mix mirrors
/// the locality argument of the paper — most traffic stays inside a
/// cluster, the backbone carries the rest — and gives every shard
/// enough same-window work to amortize the barrier.
fn scaled_workload(topo: &Topology) -> Vec<(Time, usize, AppSend)> {
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); topo.hub_count()];
    for c in 0..topo.cab_count() {
        clusters[topo.cab_attachment(c).0].push(c);
    }
    clusters.retain(|m| !m.is_empty());
    let mut sends = Vec::new();
    for round in 0..ROUNDS {
        let at = Time::from_micros(3 + 15 * round);
        for (ci, members) in clusters.iter().enumerate() {
            for (mi, &src) in members.iter().enumerate() {
                if members.len() > 1 {
                    let dst = members[(mi + 1 + round as usize) % members.len()];
                    if dst != src {
                        let data: Arc<[u8]> =
                            vec![(src as u64 * 13 + round) as u8; 640 + 96 * (round as usize % 3)]
                                .into();
                        sends.push((
                            at,
                            src,
                            AppSend::Stream { dst, src_mailbox: 1, dst_mailbox: 40, data },
                        ));
                    }
                }
                if clusters.len() > 1 && mi % 3 == 0 {
                    let far = &clusters[(ci + clusters.len() / 2) % clusters.len()];
                    let dst = far[mi % far.len()];
                    if dst != src {
                        let data: Arc<[u8]> = vec![(src as u64 + 7 * round) as u8; 512].into();
                        sends.push((
                            at,
                            src,
                            AppSend::Stream { dst, src_mailbox: 1, dst_mailbox: 41, data },
                        ));
                    }
                }
            }
        }
    }
    sends
}

/// One timed run of the workload at `shards` shards. Returns the
/// events processed, the wall seconds, and the metrics JSON (the
/// determinism fingerprint). Only the `absorb` run feeds the table's
/// metrics/trace so a reference run never double-counts.
fn timed_run(
    topo: &Topology,
    sends: &[(Time, usize, AppSend)],
    shards: usize,
    ctx: &ExpCtx,
    table: &mut Table,
    absorb: bool,
) -> (u64, f64, String) {
    let t0 = Instant::now();
    let mut world = ShardedWorld::new(topo.clone(), SystemConfig::default(), shards);
    if ctx.observing() {
        world.enable_observability();
    }
    for (at, cab, send) in sends {
        world.schedule_send(*at, *cab, send.clone());
    }
    let (events, _) = world.run_to_quiescence(Time::from_millis(100));
    let wall = t0.elapsed().as_secs_f64();
    let fingerprint = world.metrics().to_json();
    assert!(
        world.transport_quiescent(),
        "{}: scale workload failed to drain — deadline too tight",
        table.id
    );
    if absorb {
        ctx.absorb_sharded(table, &world);
    }
    (events, wall, fingerprint)
}

/// Shared runner: main run at `ctx.shards`, plus (when parallel) the
/// 1-shard reference, speedup note, and the determinism diff.
fn run_scale(id: &'static str, title: &str, topo: Topology, ctx: &ExpCtx) -> Table {
    let mut table =
        Table::new(id, title.to_string(), &["config", "shards", "events", "wall", "events/sec"]);
    let cabs = topo.cab_count();
    let hubs = topo.hub_count();
    let shards = ctx.shard_count().min(hubs);
    let sends = scaled_workload(&topo);
    let config = format!("{hubs} HUBs / {cabs} CABs / {} sends", sends.len());

    let (events, wall, fingerprint) = timed_run(&topo, &sends, shards, ctx, &mut table, true);
    table.record_events(events);
    let eps = events as f64 / wall.max(1e-9);
    table.row(&[
        config.clone(),
        shards.to_string(),
        events.to_string(),
        format!("{:.1} ms", wall * 1e3),
        format!("{eps:.0}"),
    ]);

    if shards > 1 {
        let (ref_events, ref_wall, ref_fingerprint) =
            timed_run(&topo, &sends, 1, ctx, &mut table, false);
        table.record_events(ref_events);
        let ref_eps = ref_events as f64 / ref_wall.max(1e-9);
        table.row(&[
            config,
            "1 (reference)".to_string(),
            ref_events.to_string(),
            format!("{:.1} ms", ref_wall * 1e3),
            format!("{ref_eps:.0}"),
        ]);
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        table.note(format!(
            "speedup at {shards} shards: {:.2}x events/sec ({cores}-core host{})",
            eps / ref_eps,
            if cores < shards { "; shards oversubscribed, no speedup possible" } else { "" }
        ));
        if ref_events != events {
            table.note(format!(
                "DETERMINISM VIOLATED: {events} events at {shards} shards vs {ref_events} at 1"
            ));
        } else if fingerprint != ref_fingerprint {
            table.note(format!(
                "DETERMINISM VIOLATED: metrics registries differ between 1 and {shards} shards"
            ));
        } else {
            table.note(format!("determinism: metrics bit-identical across 1 and {shards} shards"));
        }
    }
    let lookahead = SystemConfig::default().hub.lookahead();
    table.note(format!(
        "conservative window: HubConfig::lookahead() = {} ns per round",
        lookahead.nanos()
    ));
    table
}

/// E26: 8-leaf fat-star (a root HUB fanning out to 8 leaf HUBs, 8
/// CABs each — 64 CABs). Leaf-local traffic dominates; the root
/// carries the cross-leaf flows, exactly the shape where sharding by
/// HUB cluster should pay.
pub fn e26_fat_star(ctx: &ExpCtx) -> Table {
    run_scale("e26", "scale: sharded fat-star (64 CABs)", Topology::fat_star(8, 8, 16), ctx)
}

/// E26b: 4×4 mesh of HUBs, 4 CABs each (64 CABs). The mesh has no
/// privileged root, so cross-shard edges appear on every side of
/// every contiguous block — the stress case for the window barrier.
pub fn e26b_mesh(ctx: &ExpCtx) -> Table {
    run_scale("e26b", "scale: sharded 4x4 mesh (64 CABs)", Topology::mesh2d(4, 4, 4, 16), ctx)
}
