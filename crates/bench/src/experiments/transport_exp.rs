//! Transport-protocol experiments: E10 (protocol comparison, loss
//! recovery, window sweep).

use crate::experiments::ExpCtx;
use crate::table::{mbit, us, Table};
use nectar_core::prelude::*;
use nectar_proto::transport::bytestream::ByteStreamConfig;
use nectar_sim::time::{Dur, Time};

/// E10a — the three transports side by side (§6.2.2).
pub fn e10_transports(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E10",
        "transport protocols (§6.2.2)",
        &["protocol", "semantics", "64 B one-way / RTT"],
    );
    // Each protocol measures on a fresh (cold) system so receiver
    // thread-switch costs are charged identically.
    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    let t0 = sys.world().now();
    sys.world_mut().send_datagram_now(0, 1, 1, 2, &[7u8; 64]);
    while sys.world().deliveries.is_empty() {
        let next = sys.world().next_event_time().expect("delivers");
        sys.world_mut().run_until(next);
    }
    let dgram = sys.world().deliveries[0].at.saturating_since(t0);
    t.record_events(sys.world().events_processed());
    t.row(&["datagram".into(), "unreliable, one packet".into(), format!("{} one-way", us(dgram))]);
    // Byte-stream one-way.
    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    let bs = sys.measure_cab_to_cab(0, 1, 64).latency;
    t.record_events(sys.world().events_processed());
    t.row(&[
        "byte-stream".into(),
        "reliable, windowed, ordered".into(),
        format!("{} one-way", us(bs)),
    ]);
    // Request-response RTT.
    let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
    let rtt = sys.measure_rpc_rtt(0, 1, 64, 64);
    t.record_events(sys.world().events_processed());
    t.row(&["request-response".into(), "at-most-once RPC".into(), format!("{} RTT", us(rtt))]);
    t.note("datagram is the floor (no ack machinery); byte-stream adds negligible one-way cost;");
    t.note("RPC RTT is roughly two crossings plus server turnaround");
    t
}

/// E10b — loss recovery: delivered integrity and retransmission counts
/// across loss rates.
pub fn e10_loss_recovery(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E10b",
        "byte-stream loss recovery",
        &["loss rate", "delivered intact", "retransmissions", "transfer time (20 KB)"],
    );
    for &loss in &[0.0f64, 0.02, 0.05, 0.10, 0.20] {
        let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
        if loss > 0.0 {
            sys.world_mut().inject_faults(loss, 0.0, 91 + (loss * 100.0) as u64);
        }
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let t0 = sys.world().now();
        sys.world_mut().send_stream_now(0, 1, 1, 2, &data);
        let deadline = t0 + Dur::from_secs(2);
        while sys.world().deliveries.is_empty() {
            let Some(next) = sys.world().next_event_time() else { break };
            if next > deadline {
                break;
            }
            sys.world_mut().run_until(next);
        }
        let intact =
            sys.world_mut().mailbox_take(1, 2).map(|m| m.data() == &data[..]).unwrap_or(false);
        let stats = sys.world().stream_stats(0, 1).unwrap();
        let elapsed =
            sys.world().deliveries.last().map_or(Dur::ZERO, |d| d.at.saturating_since(t0));
        t.record_events(sys.world().events_processed());
        t.row(&[
            format!("{:.0}%", loss * 100.0),
            if intact { "yes".into() } else { "NO".into() },
            format!("{}", stats.retransmissions),
            us(elapsed),
        ]);
    }
    t.note("go-back-N: loss costs a full window plus an RTO; delivery stays exactly-once in-order");
    t
}

/// E10c — sliding-window sweep: throughput vs window size.
pub fn e10_window_sweep(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E10c",
        "sliding-window flow control sweep",
        &["window (packets)", "256 KB throughput"],
    );
    for &window in &[1u16, 2, 4, 8, 16] {
        let cfg = SystemConfig {
            stream: ByteStreamConfig { window, ..ByteStreamConfig::default() },
            ..SystemConfig::default()
        };
        let mut sys = NectarSystem::single_hub(2, cfg);
        let tp = sys.measure_stream_throughput(0, 1, 256 * 1024, 8192);
        t.record_events(sys.world().events_processed());
        t.row(&[format!("{window}"), mbit(tp.rate)]);
    }
    t.note("the HUB ready-bit protocol allows one packet per fiber hop, so the transport window");
    t.note("stops mattering once it covers the ack round trip");
    t
}

/// E10d — request-response under loss: at-most-once semantics hold.
pub fn e10_rpc_loss(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E10d",
        "request-response under loss (at-most-once)",
        &["loss rate", "calls", "responses", "server executions", "replays"],
    );
    for &loss in &[0.0f64, 0.10, 0.25] {
        let mut sys = NectarSystem::single_hub(2, SystemConfig::default());
        if loss > 0.0 {
            sys.world_mut().inject_faults(loss, 0.0, 1234 + (loss * 100.0) as u64);
        }
        let calls = 20usize;
        let mut answered = 0usize;
        for i in 0..calls {
            let t0 = sys.world().now();
            let before = sys.world().deliveries.len();
            let tx = sys.world_mut().send_rpc_now(0, 1, 5, 80, &[i as u8; 32]);
            // Run until the request shows up, answer it, run until the
            // response shows up (or the client times out).
            let deadline = t0 + Dur::from_millis(20);
            let mut responded = false;
            while let Some(next) = sys.world().next_event_time() {
                if next > deadline {
                    break;
                }
                sys.world_mut().run_until(next);
                if !responded
                    && sys.world().deliveries.len() > before
                    && sys.world().deliveries[before..].iter().any(|d| d.cab == 1)
                {
                    sys.world_mut().rpc_respond_now(1, 0, tx, &[i as u8; 32]);
                    responded = true;
                }
                if sys.world().deliveries.iter().skip(before).any(|d| d.cab == 0) {
                    answered += 1;
                    break;
                }
            }
            // Drain both mailboxes between calls.
            while sys.world_mut().mailbox_take(0, 5).is_some() {}
            while sys.world_mut().mailbox_take(1, 80).is_some() {}
        }
        // Server executions == requests delivered (duplicates suppressed).
        let executions =
            sys.world().deliveries.iter().filter(|d| d.cab == 1 && d.mailbox == 80).count();
        let _ = Time::ZERO;
        t.record_events(sys.world().events_processed());
        t.row(&[
            format!("{:.0}%", loss * 100.0),
            format!("{calls}"),
            format!("{answered}"),
            format!("{executions}"),
            "cached-response replays on duplicate requests".into(),
        ]);
    }
    t.note("a lost response triggers a client retransmission; the server replays its cached");
    t.note("response instead of re-executing the call");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_datagram_is_fastest() {
        let t = e10_transports(&ExpCtx::off());
        let dg: f64 =
            t.rows[0][2].trim_end_matches(" one-way").trim_end_matches(" us").parse().unwrap();
        let bs: f64 =
            t.rows[1][2].trim_end_matches(" one-way").trim_end_matches(" us").parse().unwrap();
        assert!(dg <= bs + 0.5, "datagram {dg} vs byte-stream {bs}");
    }

    #[test]
    fn e10b_always_intact() {
        let t = e10_loss_recovery(&ExpCtx::off());
        for row in &t.rows {
            assert_eq!(row[1], "yes", "corrupted delivery at {row:?}");
        }
        // More loss, more retransmissions.
        let first: u64 = t.rows[0][2].parse().unwrap();
        let last: u64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert_eq!(first, 0);
        assert!(last > 0);
    }

    #[test]
    fn e10c_window_one_is_slowest() {
        let t = e10_window_sweep(&ExpCtx::off());
        let rates: Vec<f64> =
            t.rows.iter().map(|r| r[1].trim_end_matches(" Mbit/s").parse().unwrap()).collect();
        assert!(rates[0] < rates[2], "window 1 must trail window 4: {rates:?}");
    }

    #[test]
    fn e10d_answers_most_calls_under_loss() {
        let t = e10_rpc_loss(&ExpCtx::off());
        let clean: usize = t.rows[0][2].parse().unwrap();
        assert_eq!(clean, 20, "no loss -> all answered");
    }
}
