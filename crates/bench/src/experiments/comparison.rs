//! Comparison experiments against the LAN baseline: E08, E15.

use crate::experiments::ExpCtx;
use crate::table::{mbit, us, Table};
use nectar_core::prelude::*;
use nectar_lan::prelude::*;
use nectar_sim::time::Dur;
use nectar_sim::units::Bandwidth;

/// E08 — the order-of-magnitude claim: Nectar vs a 10 Mbit/s Ethernet
/// with a node-resident UNIX stack (§3.1).
pub fn e08_lan_comparison(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E08",
        "Nectar vs current LANs (§3.1)",
        &["metric", "LAN baseline", "Nectar", "improvement"],
    );
    let mut lan = LanSystem::new(4, LanConfig::default());
    let mut sys = NectarSystem::single_hub(4, SystemConfig::default());
    for &size in &[64usize, 1024, 65536] {
        let lan_lat = lan.measure_latency(0, 1, size);
        let nec = sys.measure_node_to_node(0, 1, size, NodeInterface::SharedMemory).latency;
        t.row(&[
            format!("node-to-node latency, {size} B"),
            us(lan_lat),
            us(nec),
            format!("{:.1}x", lan_lat.nanos() as f64 / nec.nanos().max(1) as f64),
        ]);
    }
    let mut lan2 = LanSystem::new(2, LanConfig::default());
    let lan_tp = lan2.measure_throughput(0, 1, 512 * 1024);
    let nec_tp = sys.measure_stream_throughput(2, 3, 512 * 1024, 8192);
    t.row(&[
        "bulk throughput (CAB endpoints)".into(),
        mbit(lan_tp),
        mbit(nec_tp.rate),
        format!("{:.1}x", nec_tp.rate.bits_per_sec() as f64 / lan_tp.bits_per_sec() as f64),
    ]);
    // Software vs wire breakdown on the LAN (the §3.1 observation).
    let stack = UnixStackConfig::bsd_1988();
    let sw = stack.send_packet(64) + stack.recv_packet(64);
    let wire = Bandwidth::from_mbit_per_sec(10).transfer_time(64 + 26);
    t.row(&[
        "LAN 64 B: software vs wire time".into(),
        format!("{} software", us(sw)),
        format!("{} wire", us(wire)),
        format!("software = {:.0}x wire", sw.nanos() as f64 / wire.nanos().max(1) as f64),
    ]);
    t.note("paper: \"the Nectar-net offers at least an order of magnitude improvement in");
    t.note("bandwidth and latency over current LANs\"");
    t.record_events(sys.world().events_processed());
    t
}

/// E15 — contention: delivered throughput vs offered load on the
/// shared medium, against the crossbar's scaling (§3.1).
pub fn e15_contention(_ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "E15",
        "shared medium vs crossbar under load (§3.1)",
        &["offered (aggregate)", "LAN delivered", "LAN mean delay", "LAN collisions"],
    );
    for &offered in &[2u64, 5, 8, 12, 16] {
        let mut lan = LanSystem::new(16, LanConfig::default());
        let report =
            lan.offered_load_run(Bandwidth::from_mbit_per_sec(offered), 512, Dur::from_millis(400));
        t.row(&[
            format!("{offered} Mbit/s"),
            mbit(report.delivered),
            us(report.mean_delay),
            format!("{}", report.collisions),
        ]);
    }
    // The Nectar side of the same story: 16 concurrent streams.
    let mut sys = NectarSystem::single_hub(16, SystemConfig::default());
    let agg = sys.measure_ring_aggregate(64 * 1024, 8192);
    t.record_events(sys.world().events_processed());
    t.note(format!(
        "Nectar 16-CAB crossbar under the same full-mesh pressure delivers {} aggregate \
         (no shared-medium collapse)",
        mbit(agg.rate)
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e08_improvement_is_an_order_of_magnitude() {
        let t = e08_lan_comparison(&ExpCtx::off());
        // Small-message latency improvement row.
        let imp: f64 = t.rows[0][3].trim_end_matches('x').parse().unwrap();
        assert!(imp >= 10.0, "latency improvement {imp}x below the paper's claim");
        let tp: f64 = t.rows[3][3].trim_end_matches('x').parse().unwrap();
        assert!(tp >= 8.0, "throughput improvement {tp}x");
    }

    #[test]
    fn e15_lan_saturates_below_wire_rate() {
        let t = e15_contention(&ExpCtx::off());
        let delivered: Vec<f64> =
            t.rows.iter().map(|r| r[1].trim_end_matches(" Mbit/s").parse().unwrap()).collect();
        assert!(delivered.iter().all(|&d| d < 10.0));
        // Light load is delivered nearly in full; heavy load is not.
        assert!(delivered[0] > 1.5);
        let last_offered = 16.0;
        assert!(delivered.last().unwrap() < &(last_offered * 0.7));
    }
}
