//! End-to-end behaviour of a single HUB, driven by a miniature event
//! loop. These tests pin the paper's §4 numbers and the datalink
//! semantics of §4.2.

use nectar_hub::prelude::*;
use nectar_sim::prelude::*;

enum Ev {
    Arrive(PortId, Item),
    Ready(PortId),
    Internal(InternalEv),
}

/// Drives `hub` with timed arrivals and ready signals until quiescent;
/// returns every emission and ready signal with its timestamp.
fn drive(
    hub: &mut Hub,
    arrivals: Vec<(u64, u8, Item)>,
    readies: Vec<(u64, u8)>,
) -> (Vec<Emission>, Vec<ReadySignal>) {
    let mut eng: Engine<Ev> = Engine::new();
    for (ns, port, item) in arrivals {
        eng.schedule_at(Time::from_nanos(ns), Ev::Arrive(PortId::new(port), item));
    }
    for (ns, port) in readies {
        eng.schedule_at(Time::from_nanos(ns), Ev::Ready(PortId::new(port)));
    }
    let mut emissions = Vec::new();
    let mut signals = Vec::new();
    let mut fx = Effects::new();
    while let Some(ev) = eng.step() {
        let now = eng.now();
        fx.clear();
        match ev {
            Ev::Arrive(p, item) => hub.item_arrives(now, p, item, &mut fx),
            Ev::Ready(p) => hub.ready_signal_arrives(now, p, &mut fx),
            Ev::Internal(ie) => hub.internal(now, ie, &mut fx),
        }
        emissions.append(&mut fx.emissions);
        signals.append(&mut fx.ready_signals);
        for i in fx.internal.drain(..) {
            eng.schedule_at(i.at, Ev::Internal(i.ev));
        }
    }
    (emissions, signals)
}

fn hub0() -> Hub {
    Hub::new(HubId::new(0), HubConfig::prototype())
}

fn open(retry: bool, reply: bool, port: u8) -> Item {
    Command::open(false, retry, reply, HubId::new(0), PortId::new(port)).into()
}

fn test_open(retry: bool, port: u8) -> Item {
    Command::open(true, retry, false, HubId::new(0), PortId::new(port)).into()
}

fn user(op: UserOp, port: u8) -> Item {
    Command::user(op, HubId::new(0), PortId::new(port)).into()
}

fn sup(op: SupervisorOp, port: u8) -> Item {
    Command::supervisor(op, HubId::new(0), PortId::new(port)).into()
}

fn packet(id: u64, len: usize) -> Item {
    Packet::new(id, vec![0xABu8; len]).into()
}

fn data_emissions(emissions: &[Emission]) -> Vec<&Emission> {
    emissions.iter().filter(|e| matches!(e.item, Item::Packet(_))).collect()
}

// ------------------------------------------------------------------
// E01: setup + first byte = 700 ns; established = 350 ns
// ------------------------------------------------------------------

#[test]
fn connection_setup_and_first_byte_is_ten_cycles() {
    let mut hub = hub0();
    // Command packet: open P4->P8, then the data packet (back-to-back
    // on the wire: the command occupies 240 ns).
    let (emissions, _) =
        drive(&mut hub, vec![(0, 4, open(false, false, 8)), (240, 4, packet(1, 64))], vec![]);
    let data = data_emissions(&emissions);
    assert_eq!(data.len(), 1);
    assert_eq!(data[0].port, PortId::new(8));
    assert_eq!(data[0].at, Time::from_nanos(700), "paper: 10 cycles of 70 ns");
}

#[test]
fn established_connection_transfer_is_five_cycles() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![
            (0, 4, open(false, false, 8)),
            (240, 4, packet(1, 64)),
            // Much later, the connection is still open: pure transit.
            (100_000, 4, packet(2, 64)),
        ],
        vec![],
    );
    let data = data_emissions(&emissions);
    assert_eq!(data.len(), 2);
    assert_eq!(data[1].at, Time::from_nanos(100_000 + 350), "paper: 5 cycles of 70 ns");
}

#[test]
fn pipelined_transfer_matches_fiber_bandwidth() {
    // A 1 KB packet's last byte leaves 81.92 us after its first.
    let mut hub = hub0();
    let (emissions, _) =
        drive(&mut hub, vec![(0, 4, open(false, false, 8)), (240, 4, packet(1, 1022))], vec![]);
    let data = data_emissions(&emissions);
    // Emission time is first-byte; last byte implied by wire size. What
    // we can check here: a second back-to-back packet is serialized
    // behind the first at wire rate, not earlier.
    assert_eq!(data[0].at, Time::from_nanos(700));
}

// ------------------------------------------------------------------
// E02: one connection per 70 ns controller cycle
// ------------------------------------------------------------------

#[test]
fn controller_serializes_one_connection_per_cycle() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![
            (0, 0, open(false, false, 5)),
            (240, 0, packet(1, 16)),
            (0, 1, open(false, false, 6)),
            (240, 1, packet(2, 16)),
        ],
        vec![],
    );
    let mut data: Vec<_> = data_emissions(&emissions).into_iter().map(|e| e.at).collect();
    data.sort();
    assert_eq!(data[0], Time::from_nanos(700));
    assert_eq!(data[1] - data[0], Dur::from_nanos(70), "second setup waits one cycle");
}

// ------------------------------------------------------------------
// Open failure modes
// ------------------------------------------------------------------

#[test]
fn open_busy_output_without_retry_nacks() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![(0, 0, open(false, false, 5)), (1000, 1, open(false, true, 5))],
        vec![],
    );
    let nacks: Vec<_> =
        emissions.iter().filter(|e| matches!(e.item, Item::Reply(Reply::Nack { .. }))).collect();
    assert_eq!(nacks.len(), 1);
    assert_eq!(nacks[0].port, PortId::new(1), "NACK returns on the issuing port");
    assert_eq!(hub.counters().opens_failed, 1);
    assert_eq!(hub.connections(), vec![(PortId::new(0), PortId::new(5))]);
}

#[test]
fn open_with_retry_waits_for_close() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![
            (0, 0, open(false, false, 5)),
            (500, 1, open(true, true, 5)), // retry + reply
            (5_000, 2, user(UserOp::Close, 5)),
        ],
        vec![],
    );
    assert_eq!(hub.counters().opens_retried, 1);
    assert_eq!(hub.connections(), vec![(PortId::new(1), PortId::new(5))]);
    // The eventual success sends the Ack reply.
    let acks: Vec<_> =
        emissions.iter().filter(|e| matches!(e.item, Item::Reply(Reply::Ack { .. }))).collect();
    assert_eq!(acks.len(), 1);
    assert!(acks[0].at > Time::from_nanos(5_000), "ack only after the close freed the port");
}

#[test]
fn self_connection_is_rejected() {
    let mut hub = hub0();
    drive(&mut hub, vec![(0, 3, open(false, false, 3))], vec![]);
    assert!(hub.connections().is_empty());
    assert_eq!(hub.counters().opens_failed, 1);
}

// ------------------------------------------------------------------
// E07: test-open flow control
// ------------------------------------------------------------------

#[test]
fn test_open_blocks_until_ready_signal() {
    let mut hub = hub0();
    let (_, _) = drive(
        &mut hub,
        vec![(0, 2, user(UserOp::ClearReady, 5)), (1_000, 1, test_open(true, 5))],
        vec![(50_000, 5)], // downstream drains much later
    );
    assert_eq!(hub.counters().opens_retried, 1);
    assert_eq!(hub.connections(), vec![(PortId::new(1), PortId::new(5))]);
}

#[test]
fn flow_control_ablation_ignores_ready_bits() {
    let cfg = HubConfig { flow_control: false, ..HubConfig::prototype() };
    let mut hub = Hub::new(HubId::new(0), cfg);
    drive(
        &mut hub,
        vec![(0, 2, user(UserOp::ClearReady, 5)), (1_000, 1, test_open(true, 5))],
        vec![],
    );
    assert_eq!(hub.counters().opens_retried, 0);
    assert_eq!(hub.connections(), vec![(PortId::new(1), PortId::new(5))]);
}

#[test]
fn packet_clears_ready_and_signals_upstream() {
    let mut hub = hub0();
    let (_, signals) =
        drive(&mut hub, vec![(0, 4, open(false, false, 8)), (240, 4, packet(1, 100))], vec![]);
    // Forwarding the packet signalled "emerged from input queue" to
    // P4's upstream peer...
    assert_eq!(signals.len(), 1);
    assert_eq!(signals[0].port, PortId::new(4));
    // ...and cleared the ready bit of the output it passed through.
    assert!(!hub.status(PortId::new(8)).ready);
    assert!(hub.status(PortId::new(4)).ready);
}

// ------------------------------------------------------------------
// Multicast (§4.2.2)
// ------------------------------------------------------------------

#[test]
fn multicast_emits_on_all_outputs_in_lockstep() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![
            (0, 0, open(false, false, 3)),
            (240, 0, open(false, false, 5)),
            (480, 0, packet(1, 32)),
        ],
        vec![],
    );
    let data = data_emissions(&emissions);
    assert_eq!(data.len(), 2);
    assert_eq!(data[0].at, data[1].at, "one input drives both outputs in lockstep");
    let mut ports: Vec<_> = data.iter().map(|e| e.port).collect();
    ports.sort();
    assert_eq!(ports, vec![PortId::new(3), PortId::new(5)]);
}

#[test]
fn fanout_counts_extra_copies_beyond_the_first_output() {
    let mut hub = hub0();
    drive(
        &mut hub,
        vec![
            (0, 0, open(false, false, 3)),
            (240, 0, open(false, false, 5)),
            (480, 0, open(false, false, 7)),
            (720, 0, packet(1, 32)),
            (40_000, 0, packet(2, 32)),
        ],
        vec![],
    );
    // Three outputs per forward: two copies beyond the first, twice.
    assert_eq!(hub.counters().fanout_copies, 4);
    assert_eq!(hub.counters().packets_forwarded, 2);
}

#[test]
fn unicast_forwards_count_no_fanout() {
    let mut hub = hub0();
    drive(&mut hub, vec![(0, 0, open(false, false, 3)), (240, 0, packet(1, 64))], vec![]);
    assert_eq!(hub.counters().fanout_copies, 0);
    assert_eq!(hub.counters().packets_forwarded, 1);
}

// ------------------------------------------------------------------
// close all (§4.2.1)
// ------------------------------------------------------------------

#[test]
fn close_all_tears_down_route_after_data() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![(0, 0, open(false, false, 3)), (240, 0, packet(1, 64)), (6_000, 0, Item::CloseAll)],
        vec![],
    );
    assert!(hub.connections().is_empty(), "close all breaks the connection it passed over");
    // The marker itself is forwarded downstream first.
    assert!(emissions.iter().any(|e| e.item == Item::CloseAll && e.port == PortId::new(3)));
    // The data was delivered before the teardown.
    assert_eq!(data_emissions(&emissions).len(), 1);
}

#[test]
fn close_all_tears_down_multicast_branches() {
    let mut hub = hub0();
    drive(
        &mut hub,
        vec![
            (0, 0, open(false, false, 3)),
            (240, 0, open(false, false, 5)),
            (480, 0, packet(1, 16)),
            (10_000, 0, Item::CloseAll),
        ],
        vec![],
    );
    assert!(hub.connections().is_empty());
}

// ------------------------------------------------------------------
// Replies travel the reverse path (§4.2.1)
// ------------------------------------------------------------------

#[test]
fn reply_routes_backwards_through_connection() {
    let mut hub = hub0();
    let reply = Item::Reply(Reply::Ack { hub: HubId::new(1), port: PortId::new(8) });
    let (emissions, _) = drive(
        &mut hub,
        vec![
            (0, 4, open(false, false, 8)),
            // Later, a reply from the downstream HUB arrives on P8's
            // input fiber; it must leave on P4's output fiber.
            (5_000, 8, reply.clone()),
        ],
        vec![],
    );
    let replies: Vec<_> = emissions.iter().filter(|e| matches!(e.item, Item::Reply(_))).collect();
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].port, PortId::new(4));
    assert_eq!(
        replies[0].at,
        Time::from_nanos(5_000) + HubConfig::prototype().reply_hop_latency,
        "replies steal cycles: fixed per-hop latency, never blocked"
    );
    assert_eq!(hub.counters().replies_forwarded, 1);
}

#[test]
fn reply_without_reverse_path_is_dropped() {
    let mut hub = hub0();
    let reply = Item::Reply(Reply::Ack { hub: HubId::new(1), port: PortId::new(8) });
    drive(&mut hub, vec![(0, 8, reply)], vec![]);
    assert_eq!(hub.counters().replies_dropped, 1);
}

// ------------------------------------------------------------------
// Queue overflow (1 KB input queues, §4.2.3)
// ------------------------------------------------------------------

#[test]
fn blocked_oversized_packet_overflows_queue() {
    let mut hub = hub0();
    // 2 KB packet with no connection: cut-through cannot start, the
    // 1 KB queue overruns when the 1025th byte arrives.
    drive(&mut hub, vec![(0, 0, packet(1, 2048))], vec![]);
    assert_eq!(hub.counters().overflows, 1);
    assert_eq!(hub.queue_occupancy(PortId::new(0)), 0, "overflowed item is discarded");
}

#[test]
fn circuit_switched_large_packet_cuts_through_without_overflow() {
    let mut hub = hub0();
    // With the circuit open, a 64 KB packet streams through the 1 KB
    // queue (paper: "circuit switching must be used for larger packets").
    let (emissions, _) =
        drive(&mut hub, vec![(0, 0, open(false, false, 5)), (240, 0, packet(1, 65_536))], vec![]);
    assert_eq!(hub.counters().overflows, 0);
    assert_eq!(data_emissions(&emissions).len(), 1);
}

#[test]
fn small_stuck_items_are_discarded_after_the_timeout() {
    let mut hub = hub0();
    // A 512 B packet fits entirely in the queue; with no connection it
    // waits (no overflow) until the stuck timeout discards it so the
    // datalink can recover (§6.2.1 "lost HUB commands").
    drive(&mut hub, vec![(0, 0, packet(1, 512))], vec![]);
    assert_eq!(hub.counters().overflows, 0);
    assert_eq!(hub.counters().drops, 1, "discarded at the stuck timeout");
    assert_eq!(hub.queue_occupancy(PortId::new(0)), 0);
}

#[test]
fn stuck_check_is_harmless_when_the_connection_arrives_in_time() {
    let mut hub = hub0();
    // The packet waits briefly; an open from the same port (queued
    // behind it? no — opens precede packets). Here: packet arrives
    // first by mistake, open follows on the same input; the stuck
    // timeout must NOT fire once forwarding begins.
    drive(&mut hub, vec![(0, 0, packet(1, 128)), (5_000, 0, open(false, false, 5))], vec![]);
    // The open is queued BEHIND the waiting packet (head-of-line), so
    // the packet is discarded at the timeout and the open then runs.
    assert_eq!(hub.counters().drops, 1);
    assert_eq!(hub.connections(), vec![(PortId::new(0), PortId::new(5))]);
}

// ------------------------------------------------------------------
// Locks
// ------------------------------------------------------------------

#[test]
fn lock_blocks_other_inputs_until_unlock() {
    let mut hub = hub0();
    drive(
        &mut hub,
        vec![
            (0, 1, user(UserOp::Lock { retry: false, reply: false }, 5)),
            (1_000, 0, open(true, false, 5)), // open with retry blocks on the lock
            (10_000, 1, user(UserOp::Unlock, 5)),
        ],
        vec![],
    );
    assert_eq!(hub.counters().locks_acquired, 1);
    assert_eq!(hub.connections(), vec![(PortId::new(0), PortId::new(5))]);
}

#[test]
fn lock_holder_can_open_through_its_own_lock() {
    let mut hub = hub0();
    drive(
        &mut hub,
        vec![
            (0, 1, user(UserOp::Lock { retry: false, reply: false }, 5)),
            (1_000, 1, open(false, false, 5)),
        ],
        vec![],
    );
    assert_eq!(hub.connections(), vec![(PortId::new(1), PortId::new(5))]);
}

// ------------------------------------------------------------------
// Status interrogation (§4.1)
// ------------------------------------------------------------------

#[test]
fn query_status_reports_connection() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![(0, 0, open(false, false, 5)), (1_000, 2, user(UserOp::QueryStatus, 5))],
        vec![],
    );
    let status = emissions
        .iter()
        .find_map(|e| match e.item {
            Item::Reply(Reply::Status { bits, .. }) if e.port == PortId::new(2) => Some(bits),
            _ => None,
        })
        .expect("status reply on the issuing port");
    assert!(PortStatus::unpack(status).driven_by.is_some());
}

// ------------------------------------------------------------------
// Supervisor commands
// ------------------------------------------------------------------

#[test]
fn reset_clears_connections_and_locks() {
    let mut hub = hub0();
    drive(
        &mut hub,
        vec![
            (0, 0, open(false, false, 5)),
            (240, 1, user(UserOp::Lock { retry: false, reply: false }, 6)),
            (5_000, 2, sup(SupervisorOp::Reset, 0)),
        ],
        vec![],
    );
    assert!(hub.connections().is_empty());
    assert!(hub.status(PortId::new(6)).locked_by.is_none());
    assert_eq!(hub.counters().resets, 1);
}

#[test]
fn loopback_echoes_items() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![(0, 2, sup(SupervisorOp::LoopbackOn, 3)), (1_000, 3, packet(9, 32))],
        vec![],
    );
    let data = data_emissions(&emissions);
    assert_eq!(data.len(), 1);
    assert_eq!(data[0].port, PortId::new(3), "loopback echoes on the same port");
}

#[test]
fn disabled_port_drops_arrivals() {
    let mut hub = hub0();
    drive(
        &mut hub,
        vec![(0, 2, sup(SupervisorOp::DisablePort, 3)), (1_000, 3, packet(9, 32))],
        vec![],
    );
    assert_eq!(hub.counters().drops, 1);
    assert!(!hub.status(PortId::new(3)).enabled);
}

#[test]
fn disabled_output_rejects_opens_until_reenabled() {
    let mut hub = hub0();
    drive(
        &mut hub,
        vec![
            (0, 2, sup(SupervisorOp::DisablePort, 5)),
            (1_000, 0, open(false, false, 5)),
            (2_000, 2, sup(SupervisorOp::EnablePort, 5)),
            (3_000, 0, open(false, false, 5)),
        ],
        vec![],
    );
    assert_eq!(hub.counters().opens_failed, 1);
    assert_eq!(hub.connections(), vec![(PortId::new(0), PortId::new(5))]);
}

// ------------------------------------------------------------------
// Accounting
// ------------------------------------------------------------------

#[test]
fn read_counters_replies_and_clear_resets() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![
            (0, 0, open(false, false, 5)),
            (1_000, 2, sup(SupervisorOp::ReadCounters, 0)),
            (2_000, 2, sup(SupervisorOp::ClearCounters, 0)),
        ],
        vec![],
    );
    let counts: Vec<u8> = emissions
        .iter()
        .filter_map(|e| match e.item {
            Item::Reply(Reply::Counters { executed, .. }) => Some(executed),
            _ => None,
        })
        .collect();
    assert_eq!(counts.len(), 1, "read counters answers with a reply");
    assert!(counts[0] >= 2, "the open and the read itself were executed");
    assert_eq!(hub.counters().commands_executed, 0, "clear counters zeroed the table");
}

#[test]
fn query_ready_reflects_manual_overrides() {
    let mut hub = hub0();
    let (emissions, _) = drive(
        &mut hub,
        vec![
            (0, 2, user(UserOp::ClearReady, 5)),
            (1_000, 2, user(UserOp::QueryReady, 5)),
            (2_000, 2, user(UserOp::SetReady, 5)),
            (3_000, 2, user(UserOp::QueryReady, 5)),
        ],
        vec![],
    );
    let ready_bits: Vec<bool> = emissions
        .iter()
        .filter_map(|e| match e.item {
            Item::Reply(Reply::Status { bits, .. }) => Some(PortStatus::unpack(bits).ready),
            _ => None,
        })
        .collect();
    assert_eq!(ready_bits, vec![false, true], "clear then set, observed in order");
}

#[test]
fn byte_and_packet_counters_accumulate() {
    let mut hub = hub0();
    drive(
        &mut hub,
        vec![(0, 0, open(false, false, 5)), (240, 0, packet(1, 100)), (100_000, 0, packet(2, 200))],
        vec![],
    );
    assert_eq!(hub.counters().packets_forwarded, 2);
    assert_eq!(hub.counters().bytes_forwarded, 300);
}

#[test]
fn trace_records_command_walk_when_enabled() {
    let mut hub = hub0();
    hub.trace_mut().set_enabled(true);
    drive(&mut hub, vec![(0, 4, open(false, false, 8)), (240, 4, packet(1, 16))], vec![]);
    let ctrl: Vec<_> = hub.trace().by_category(Category::Controller).collect();
    assert!(!ctrl.is_empty(), "controller activity is traced");
    assert!(ctrl[0].message.contains("open"), "{}", ctrl[0].message);
}
