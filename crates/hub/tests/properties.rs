//! Property-based tests for HUB invariants.

use nectar_hub::prelude::*;
use nectar_sim::prelude::*;
use proptest::prelude::*;

// ------------------------------------------------------------------
// Crossbar: at most one input drives an output, ever.
// ------------------------------------------------------------------

#[derive(Clone, Debug)]
enum XbarOp {
    Connect(u8, u8),
    DisconnectOut(u8),
    DisconnectIn(u8),
}

fn xbar_op() -> impl Strategy<Value = XbarOp> {
    prop_oneof![
        (0u8..16, 0u8..16).prop_map(|(a, b)| XbarOp::Connect(a, b)),
        (0u8..16).prop_map(XbarOp::DisconnectOut),
        (0u8..16).prop_map(XbarOp::DisconnectIn),
    ]
}

proptest! {
    #[test]
    fn crossbar_invariants_hold_under_random_ops(ops in prop::collection::vec(xbar_op(), 1..200)) {
        let mut xb = Crossbar::new(16);
        for op in ops {
            match op {
                XbarOp::Connect(a, b) => {
                    let _ = xb.connect(PortId::new(a), PortId::new(b));
                }
                XbarOp::DisconnectOut(p) => {
                    xb.disconnect_output(PortId::new(p));
                }
                XbarOp::DisconnectIn(p) => {
                    xb.disconnect_input(PortId::new(p));
                }
            }
            // Invariant 1: input_for is the inverse of outputs_for.
            for out in 0..16u8 {
                let out = PortId::new(out);
                if let Some(input) = xb.input_for(out) {
                    prop_assert!(xb.outputs_for(input).contains(&out));
                    prop_assert_ne!(input, out, "no self-connections");
                }
            }
            // Invariant 2: fan-out sets are disjoint across inputs.
            let mut seen = std::collections::HashSet::new();
            for input in 0..16u8 {
                for out in xb.outputs_for(PortId::new(input)) {
                    prop_assert!(seen.insert(out), "output driven by two inputs");
                }
            }
            prop_assert_eq!(seen.len(), xb.connection_count());
        }
    }

    // --------------------------------------------------------------
    // Commands: encode/decode is the identity on valid commands.
    // --------------------------------------------------------------

    #[test]
    fn command_wire_roundtrip(
        op_idx in 0usize..20,
        hub in any::<u8>(),
        param in any::<u8>(),
    ) {
        let op = UserOp::all()[op_idx];
        let cmd = Command::user(op, HubId::new(hub), PortId::new(param));
        prop_assert_eq!(Command::decode(cmd.encode()), Some(cmd));
    }

    #[test]
    fn unknown_opcodes_never_panic(bytes in any::<[u8; 3]>()) {
        // Decoding arbitrary wire bytes is total: Some(valid) or None.
        let _ = Command::decode(bytes);
    }

    // --------------------------------------------------------------
    // Output registers never interleave two items.
    // --------------------------------------------------------------

    #[test]
    fn emissions_on_one_port_never_overlap(
        sends in prop::collection::vec((0u64..1_000_000, 1usize..800), 1..40)
    ) {
        let cfg = HubConfig::prototype();
        let wire = |bytes: usize| cfg.wire_time(bytes);
        let mut hub = Hub::new(HubId::new(0), cfg.clone());
        let mut eng: Engine<(u8, Item)> = Engine::new();
        // One connection 0 -> 5; packets race in on port 0.
        eng.schedule_at(
            Time::ZERO,
            (0, Command::open(false, false, false, HubId::new(0), PortId::new(5)).into()),
        );
        for (i, (at, len)) in sends.iter().enumerate() {
            eng.schedule_at(
                Time::from_nanos(1_000 + at),
                (0, Packet::new(i as u64, vec![0u8; *len]).into()),
            );
        }
        let mut fx = Effects::new();
        let mut emissions: Vec<Emission> = Vec::new();
        // Simple driver: arrivals carry (port, item); internals loop back.
        #[allow(clippy::type_complexity)]
        let mut internals: Vec<(Time, InternalEv)> = Vec::new();
        loop {
            // Interleave engine events and hub internal events by time.
            internals.sort_by_key(|(t, _)| *t);
            let next_internal = internals.first().map(|(t, _)| *t);
            let next_external = eng.peek_time();
            fx.clear();
            match (next_internal, next_external) {
                (None, None) => break,
                (Some(ti), te) if te.is_none() || ti <= te.unwrap() => {
                    let (t, ev) = internals.remove(0);
                    hub.internal(t, ev, &mut fx);
                }
                _ => {
                    let (port, item) = eng.step().unwrap();
                    hub.item_arrives(eng.now(), PortId::new(port), item, &mut fx);
                }
            }
            emissions.append(&mut fx.emissions);
            for i in fx.internal.drain(..) {
                internals.push((i.at, i.ev));
            }
        }
        // Property: per-port, queued (non-reply) emissions are serialized
        // at wire rate — no two items overlap on the fiber.
        let mut by_port: std::collections::HashMap<PortId, Vec<&Emission>> = Default::default();
        for e in emissions.iter().filter(|e| e.item.is_queued()) {
            by_port.entry(e.port).or_default().push(e);
        }
        for (_, mut es) in by_port {
            es.sort_by_key(|e| e.at);
            for w in es.windows(2) {
                prop_assert!(
                    w[1].at >= w[0].at + wire(w[0].item.wire_bytes()),
                    "overlapping emissions: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        // Conservation: every forwarded packet is either emitted or
        // accounted as a loss.
        let emitted = emissions.iter().filter(|e| matches!(e.item, Item::Packet(_))).count() as u64;
        prop_assert_eq!(emitted, hub.counters().packets_forwarded);
        prop_assert_eq!(
            emitted + hub.counters().overflows,
            sends.len() as u64,
            "every packet is forwarded or overflows"
        );
    }
}
