//! The crossbar switch at the heart of the HUB.
//!
//! The crossbar "can connect the input queue of a port to the output
//! register of any other port. An input queue can be connected to
//! multiple output registers (for multicast), but only one input queue
//! can be connected to an output register at a time" (§4.1). This
//! module enforces exactly that invariant.
//!
//! # Examples
//!
//! ```
//! use nectar_hub::crossbar::Crossbar;
//! use nectar_hub::id::PortId;
//!
//! let mut xb = Crossbar::new(16);
//! let (p4, p8, p5) = (PortId::new(4), PortId::new(8), PortId::new(5));
//! xb.connect(p4, p8).unwrap();
//! xb.connect(p4, p5).unwrap(); // multicast fan-out from P4
//! assert_eq!(xb.input_for(p8), Some(p4));
//! assert_eq!(xb.outputs_for(p4), vec![p5, p8]);
//! assert!(xb.connect(PortId::new(3), p8).is_err()); // P8 already driven
//! ```

use crate::id::PortId;
use core::fmt;

/// Why a connection could not be made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnectError {
    /// The output register is already driven by another input queue.
    OutputBusy {
        /// The input currently driving it.
        held_by: PortId,
    },
    /// Input and output are the same port; the crossbar connects a port
    /// only "to the output register of any *other* port".
    SelfConnection,
    /// A port id at or beyond the crossbar's size.
    PortOutOfRange,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::OutputBusy { held_by } => {
                write!(f, "output register already driven by input {held_by}")
            }
            ConnectError::SelfConnection => f.write_str("cannot connect a port to itself"),
            ConnectError::PortOutOfRange => f.write_str("port id out of range"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// An N×N crossbar: at most one input per output, any fan-out per input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Crossbar {
    /// `input_of[out] = Some(in)` when `in -> out` is connected.
    input_of: Vec<Option<PortId>>,
}

impl Crossbar {
    /// Creates a crossbar with `ports` ports and no connections.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero or exceeds 256 (port ids are one wire
    /// byte).
    pub fn new(ports: usize) -> Crossbar {
        assert!(ports > 0 && ports <= 256, "crossbar size must be 1..=256");
        Crossbar { input_of: vec![None; ports] }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.input_of.len()
    }

    fn check(&self, p: PortId) -> Result<(), ConnectError> {
        if p.index() < self.input_of.len() {
            Ok(())
        } else {
            Err(ConnectError::PortOutOfRange)
        }
    }

    /// Connects `input`'s queue to `output`'s register.
    ///
    /// Re-connecting an existing pair is idempotent and succeeds.
    ///
    /// # Errors
    ///
    /// [`ConnectError::OutputBusy`] if another input drives `output`;
    /// [`ConnectError::SelfConnection`] if `input == output`;
    /// [`ConnectError::PortOutOfRange`] for ids at or past
    /// [`ports`](Crossbar::ports).
    pub fn connect(&mut self, input: PortId, output: PortId) -> Result<(), ConnectError> {
        self.check(input)?;
        self.check(output)?;
        if input == output {
            return Err(ConnectError::SelfConnection);
        }
        match self.input_of[output.index()] {
            Some(held_by) if held_by != input => Err(ConnectError::OutputBusy { held_by }),
            _ => {
                self.input_of[output.index()] = Some(input);
                Ok(())
            }
        }
    }

    /// Breaks the connection feeding `output`. Returns the input that
    /// was driving it, if any.
    pub fn disconnect_output(&mut self, output: PortId) -> Option<PortId> {
        self.input_of.get_mut(output.index())?.take()
    }

    /// Breaks every connection fed by `input`. Returns the outputs that
    /// were disconnected, in ascending order.
    pub fn disconnect_input(&mut self, input: PortId) -> Vec<PortId> {
        let mut freed = Vec::new();
        for (i, slot) in self.input_of.iter_mut().enumerate() {
            if *slot == Some(input) {
                *slot = None;
                freed.push(PortId::new(i as u8));
            }
        }
        freed
    }

    /// Breaks every connection.
    pub fn disconnect_all(&mut self) {
        self.input_of.iter_mut().for_each(|s| *s = None);
    }

    /// The input driving `output`, if connected.
    pub fn input_for(&self, output: PortId) -> Option<PortId> {
        self.input_of.get(output.index()).copied().flatten()
    }

    /// The outputs fed by `input` (the multicast fan-out set), ascending.
    pub fn outputs_for(&self, input: PortId) -> Vec<PortId> {
        self.input_of
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Some(input))
            .map(|(i, _)| PortId::new(i as u8))
            .collect()
    }

    /// `true` if the output register is currently driven.
    pub fn output_in_use(&self, output: PortId) -> bool {
        self.input_for(output).is_some()
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.input_of.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates `(input, output)` pairs of live connections.
    pub fn connections(&self) -> impl Iterator<Item = (PortId, PortId)> + '_ {
        self.input_of
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|input| (input, PortId::new(i as u8))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u8) -> PortId {
        PortId::new(n)
    }

    #[test]
    fn connect_and_lookup() {
        let mut xb = Crossbar::new(16);
        xb.connect(p(4), p(8)).unwrap();
        assert_eq!(xb.input_for(p(8)), Some(p(4)));
        assert!(xb.output_in_use(p(8)));
        assert!(!xb.output_in_use(p(4)));
        assert_eq!(xb.connection_count(), 1);
    }

    #[test]
    fn one_input_per_output() {
        let mut xb = Crossbar::new(16);
        xb.connect(p(1), p(5)).unwrap();
        assert_eq!(xb.connect(p(2), p(5)), Err(ConnectError::OutputBusy { held_by: p(1) }));
        // Idempotent re-connect by the same input succeeds.
        assert!(xb.connect(p(1), p(5)).is_ok());
        assert_eq!(xb.connection_count(), 1);
    }

    #[test]
    fn multicast_fan_out() {
        let mut xb = Crossbar::new(16);
        for out in [3, 5, 9] {
            xb.connect(p(1), p(out)).unwrap();
        }
        assert_eq!(xb.outputs_for(p(1)), vec![p(3), p(5), p(9)]);
        assert_eq!(xb.connection_count(), 3);
    }

    #[test]
    fn disconnect_output_returns_holder() {
        let mut xb = Crossbar::new(16);
        xb.connect(p(2), p(7)).unwrap();
        assert_eq!(xb.disconnect_output(p(7)), Some(p(2)));
        assert_eq!(xb.disconnect_output(p(7)), None);
        assert!(!xb.output_in_use(p(7)));
    }

    #[test]
    fn disconnect_input_frees_fan_out() {
        let mut xb = Crossbar::new(16);
        xb.connect(p(1), p(3)).unwrap();
        xb.connect(p(1), p(4)).unwrap();
        xb.connect(p(2), p(5)).unwrap();
        assert_eq!(xb.disconnect_input(p(1)), vec![p(3), p(4)]);
        assert_eq!(xb.connection_count(), 1);
        assert_eq!(xb.input_for(p(5)), Some(p(2)));
    }

    #[test]
    fn self_connection_rejected() {
        let mut xb = Crossbar::new(16);
        assert_eq!(xb.connect(p(6), p(6)), Err(ConnectError::SelfConnection));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut xb = Crossbar::new(16);
        assert_eq!(xb.connect(p(16), p(1)), Err(ConnectError::PortOutOfRange));
        assert_eq!(xb.connect(p(1), p(200)), Err(ConnectError::PortOutOfRange));
        assert_eq!(xb.input_for(p(200)), None);
    }

    #[test]
    fn disconnect_all_clears() {
        let mut xb = Crossbar::new(8);
        xb.connect(p(0), p(1)).unwrap();
        xb.connect(p(2), p(3)).unwrap();
        xb.disconnect_all();
        assert_eq!(xb.connection_count(), 0);
    }

    #[test]
    fn connections_iterator() {
        let mut xb = Crossbar::new(8);
        xb.connect(p(0), p(1)).unwrap();
        xb.connect(p(0), p(2)).unwrap();
        let pairs: Vec<_> = xb.connections().collect();
        assert_eq!(pairs, vec![(p(0), p(1)), (p(0), p(2))]);
    }
}
