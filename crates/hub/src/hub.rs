//! The HUB state machine: ports, central controller, and forwarding.
//!
//! [`Hub`] is driven by three entry points, all timestamped:
//!
//! * [`Hub::item_arrives`] — the head byte of an [`Item`] reaches a
//!   port's incoming fiber.
//! * [`Hub::ready_signal_arrives`] — the downstream peer of a port
//!   reports that its input queue drained a start-of-packet.
//! * [`Hub::internal`] — a deferred transition previously emitted via
//!   [`Effects`] comes due.
//!
//! Consequences are appended to an [`Effects`] buffer; the caller owns
//! the event queue. See the crate docs for the timing calibration.
//!
//! # Modelling notes (vs. the hardware)
//!
//! * Data moves as whole [`Item`]s with byte-exact serialization times,
//!   not per-byte events. Cut-through is modelled by forwarding an item
//!   [`HubConfig::transit`] after its head reaches the queue head.
//! * The ready bit of an output port is cleared when a packet *commits*
//!   to that output (at most [`HubConfig::transit`] earlier than the
//!   hardware's "start of packet at the output register"), which is
//!   conservative and race-free.
//! * Queue occupancy is charged per item up to the free space at
//!   arrival; an item too large for the free space must begin
//!   forwarding before the residue would arrive ([`InternalEv::OverflowCheck`])
//!   or it is dropped as an overflow, mirroring a real cut-through
//!   queue overrun.

use crate::command::{Command, Op, Reply, SupervisorOp, UserOp};
use crate::config::HubConfig;
use crate::counters::HubCounters;
use crate::crossbar::Crossbar;
use crate::effects::{Effects, InternalEv};
use crate::id::{HubId, PortId};
use crate::item::Item;
use crate::status::PortStatus;
use nectar_sim::telemetry::{EventKind, FlightId, Telemetry};
use nectar_sim::time::Time;
use nectar_sim::trace::{Category, Trace};
use std::collections::VecDeque;

#[derive(Clone, Debug, PartialEq, Eq)]
enum HeadState {
    /// No head is being processed (queue may be empty).
    Idle,
    /// Head command submitted to the controller.
    AwaitingController { seq: u64 },
    /// Head command failed and sits in the retry list.
    AwaitingRetry { seq: u64 },
    /// Head item needs a crossbar connection from this input.
    AwaitingConnection { seq: u64 },
    /// Head item is being forwarded.
    Draining { seq: u64 },
}

#[derive(Clone, Debug)]
struct Queued {
    seq: u64,
    item: Item,
    /// When the item's first byte arrived.
    head_at: Time,
    /// Bytes charged against queue capacity for this item.
    charged: usize,
}

#[derive(Clone, Debug)]
struct Port {
    queue: VecDeque<Queued>,
    queued_bytes: usize,
    head: HeadState,
    out_busy_until: Time,
    /// Downstream input queue can accept a packet (flow control).
    ready: bool,
    locked_by: Option<PortId>,
    enabled: bool,
    loopback: bool,
}

impl Port {
    fn new() -> Port {
        Port {
            queue: VecDeque::new(),
            queued_bytes: 0,
            head: HeadState::Idle,
            out_busy_until: Time::ZERO,
            ready: true,
            locked_by: None,
            enabled: true,
            loopback: false,
        }
    }
}

#[derive(Clone, Debug)]
struct PendingRetry {
    port: PortId,
    seq: u64,
    cmd: Command,
}

/// One Nectar HUB: an N×N crossbar, N I/O ports, and the central
/// controller.
///
/// # Examples
///
/// Establishing a connection and pushing a packet through it — the
/// paper's headline "700 ns to set up a connection and transfer the
/// first byte":
///
/// ```
/// use nectar_hub::prelude::*;
/// use nectar_sim::time::Time;
///
/// let mut hub = Hub::new(HubId::new(0), HubConfig::prototype());
/// let mut fx = Effects::new();
/// let t0 = Time::ZERO;
///
/// // Command packet: "open HUB0 P8" followed by the data packet.
/// let open = Command::open(false, false, false, HubId::new(0), PortId::new(8));
/// hub.item_arrives(t0, PortId::new(4), open.into(), &mut fx);
/// let exec = fx.internal[0].clone();
/// hub.item_arrives(t0 + hub.config().wire_time(3), PortId::new(4),
///                  Packet::new(1, vec![0u8; 64]).into(), &mut fx);
/// fx.clear();
/// hub.internal(exec.at, exec.ev, &mut fx);
/// // First data byte leaves P8's output register 700 ns after t0.
/// assert_eq!(fx.emissions[0].at, Time::from_nanos(700));
/// assert_eq!(fx.emissions[0].port, PortId::new(8));
/// ```
#[derive(Clone, Debug)]
pub struct Hub {
    id: HubId,
    cfg: HubConfig,
    xbar: Crossbar,
    ports: Vec<Port>,
    ctrl_free: Time,
    retries: Vec<PendingRetry>,
    counters: HubCounters,
    trace: Trace,
    telemetry: Telemetry,
    next_seq: u64,
}

impl Hub {
    /// Creates a HUB with every port idle, enabled, and ready.
    pub fn new(id: HubId, cfg: HubConfig) -> Hub {
        let ports = (0..cfg.ports).map(|_| Port::new()).collect();
        Hub {
            id,
            xbar: Crossbar::new(cfg.ports),
            ports,
            cfg,
            ctrl_free: Time::ZERO,
            retries: Vec::new(),
            counters: HubCounters::new(),
            trace: Trace::disabled(),
            telemetry: Telemetry::default(),
            next_seq: 0,
        }
    }

    /// This HUB's identity.
    pub fn id(&self) -> HubId {
        self.id
    }

    /// The configuration the HUB was built with.
    pub fn config(&self) -> &HubConfig {
        &self.cfg
    }

    /// Event counters since power-on (or `clear counters`).
    pub fn counters(&self) -> &HubCounters {
        &self.counters
    }

    /// The instrumentation-board trace (disabled by default).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace, e.g. to enable it.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The typed flight-recorder events (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable access to the flight recorder, e.g. to enable it.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The status-table entry for `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn status(&self, port: PortId) -> PortStatus {
        let p = &self.ports[port.index()];
        PortStatus {
            driven_by: self.xbar.input_for(port),
            locked_by: p.locked_by,
            ready: p.ready,
            enabled: p.enabled,
            loopback: p.loopback,
        }
    }

    /// Live crossbar connections, for assertions and display.
    pub fn connections(&self) -> Vec<(PortId, PortId)> {
        self.xbar.connections().collect()
    }

    /// Bytes currently buffered in `port`'s input queue (charged model).
    pub fn queue_occupancy(&self, port: PortId) -> usize {
        self.ports[port.index()].queued_bytes
    }

    fn in_range(&self, port: PortId) -> bool {
        port.index() < self.ports.len()
    }

    // ---------------------------------------------------------------
    // Entry points
    // ---------------------------------------------------------------

    /// The head byte of `item` reaches `port`'s incoming fiber at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range (a wiring error in the caller,
    /// not a protocol error).
    pub fn item_arrives(&mut self, now: Time, port: PortId, item: Item, fx: &mut Effects) {
        assert!(self.in_range(port), "arrival on out-of-range port {port}");
        if !self.ports[port.index()].enabled {
            self.counters.drops += 1;
            return;
        }
        if self.ports[port.index()].loopback {
            // Link test: echo straight back out the same port.
            let at = now.max(self.ports[port.index()].out_busy_until) + self.cfg.transit;
            let busy = at + self.cfg.wire_time(item.wire_bytes());
            self.ports[port.index()].out_busy_until = busy;
            fx.emit(at, port, item);
            return;
        }
        if let Item::Reply(reply) = item {
            self.forward_reply(now, port, reply, fx);
            return;
        }

        let seq = self.next_seq;
        self.next_seq += 1;
        let size = item.wire_bytes();
        // Only data packets occupy the 1 KB queue accounting: command
        // and close-all symbols are "extracted from the incoming byte
        // stream" by the I/O port (§4.1) rather than buffered with data.
        let accountable = matches!(item, Item::Packet(_));
        let free = self.cfg.queue_capacity.saturating_sub(self.ports[port.index()].queued_bytes);
        let charged = if accountable { size.min(free) } else { 0 };
        if accountable && size > free {
            // The residue cannot buffer; forwarding must start before it
            // arrives or the queue overruns.
            let deadline = now + self.cfg.wire_time(free);
            fx.defer(deadline, InternalEv::OverflowCheck { port, seq });
        }
        self.trace.record_with(now, Category::Port, || format!("{} {port} <- {item}", self.id));
        if let Item::Packet(pkt) = &item {
            // Span boundary: fiber serialization ends, crossbar queue
            // wait begins. Paired with this flight's crossbar_forward
            // on the same HUB, the gap is the hop's queue wait.
            self.telemetry.record(
                now,
                FlightId(pkt.id()),
                EventKind::CrossbarEnqueue {
                    hub: self.id.raw(),
                    input: port.index() as u8,
                    bytes: size as u32,
                },
            );
        }
        let p = &mut self.ports[port.index()];
        p.queued_bytes += charged;
        p.queue.push_back(Queued { seq, item, head_at: now, charged });
        if p.queue.len() == 1 && p.head == HeadState::Idle {
            self.start_head(now, port, fx);
        }
    }

    /// The downstream peer of `port` reports its input queue drained a
    /// start-of-packet: set the ready bit and wake blocked `test open`s.
    pub fn ready_signal_arrives(&mut self, now: Time, port: PortId, fx: &mut Effects) {
        if !self.in_range(port) {
            return;
        }
        self.ports[port.index()].ready = true;
        self.trace.record_with(now, Category::Port, || format!("{} {port} ready", self.id));
        self.wake_retries_for(now, port, fx);
    }

    /// Feeds back a deferred transition at its due time.
    pub fn internal(&mut self, now: Time, ev: InternalEv, fx: &mut Effects) {
        match ev {
            InternalEv::CtrlExec { port } => self.ctrl_exec(now, port, fx),
            InternalEv::HeadDone { port, seq } => {
                let p = &mut self.ports[port.index()];
                if p.head == (HeadState::Draining { seq }) {
                    p.queue.pop_front();
                    p.head = HeadState::Idle;
                    self.start_head(now, port, fx);
                }
            }
            InternalEv::OverflowCheck { port, seq } => self.overflow_check(now, port, seq, fx),
            InternalEv::StuckCheck { port, seq } => {
                let p = &mut self.ports[port.index()];
                if p.head == (HeadState::AwaitingConnection { seq }) {
                    let dropped = p.queue.pop_front().expect("waiting head exists");
                    p.queued_bytes -= dropped.charged;
                    p.head = HeadState::Idle;
                    self.counters.drops += 1;
                    self.trace.record_with(now, Category::Port, || {
                        format!("{} {port} stuck item discarded: {}", self.id, dropped.item)
                    });
                    self.start_head(now, port, fx);
                }
            }
            InternalEv::CloseBehind { input, outputs } => {
                for out in outputs {
                    if self.xbar.input_for(out) == Some(input) {
                        self.xbar.disconnect_output(out);
                        self.trace.record_with(now, Category::Crossbar, || {
                            format!("{} close-behind {input}->{out}", self.id)
                        });
                        self.record_close(now, input, out);
                        self.wake_retries_for(now, out, fx);
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Head processing
    // ---------------------------------------------------------------

    fn start_head(&mut self, now: Time, port: PortId, fx: &mut Effects) {
        let Some(front) = self.ports[port.index()].queue.front() else {
            return;
        };
        let seq = front.seq;
        let head_at = front.head_at;
        let for_us = matches!(&front.item, Item::Command(c) if c.hub == self.id);
        if for_us {
            // Submit to the central controller once fully received.
            let fully_arrived = head_at + self.cfg.wire_time(crate::command::COMMAND_WIRE_BYTES);
            let exec_at = fully_arrived.max(now).max(self.ctrl_free);
            self.ctrl_free = exec_at + self.cfg.cycle;
            self.ports[port.index()].head = HeadState::AwaitingController { seq };
            fx.defer(exec_at + self.cfg.controller_latency, InternalEv::CtrlExec { port });
        } else {
            self.forward_head(now.max(head_at), port, seq, fx);
        }
    }

    /// Forwards the head item of `port` over the crossbar, if connected.
    fn forward_head(&mut self, ready_at: Time, port: PortId, seq: u64, fx: &mut Effects) {
        let outs = self.xbar.outputs_for(port);
        if outs.is_empty() {
            self.ports[port.index()].head = HeadState::AwaitingConnection { seq };
            // If the connection never comes (a lost open command), the
            // port discards the item after the stuck timeout so the
            // datalink can retransmit (§6.2.1).
            fx.defer(ready_at + self.cfg.stuck_timeout, InternalEv::StuckCheck { port, seq });
            return;
        }
        let front = self.ports[port.index()].queue.front().cloned().expect("head exists");
        debug_assert_eq!(front.seq, seq);
        let size = front.item.wire_bytes();
        let wire = self.cfg.wire_time(size);
        // Multicast drives every output in lockstep from one input.
        let start = outs
            .iter()
            .map(|o| self.ports[o.index()].out_busy_until)
            .max()
            .unwrap_or(Time::ZERO)
            .max(ready_at);
        let emit_at = start + self.cfg.transit;
        let is_packet = matches!(front.item, Item::Packet(_));
        if is_packet && outs.len() > 1 {
            // Every output beyond the first is an extra copy of the
            // same buffer entering the network: multicast fan-out, or
            // a stale circuit member left by a lost close. The pool
            // conservation audit needs the count either way.
            self.counters.fanout_copies += outs.len() as u64 - 1;
        }
        for &out in &outs {
            self.ports[out.index()].out_busy_until = emit_at + wire;
            if is_packet {
                // Hardware clears the ready bit when the start-of-packet
                // is detected at the output register.
                self.ports[out.index()].ready = false;
            }
            fx.emit(emit_at, out, front.item.clone());
        }
        if is_packet {
            self.counters.packets_forwarded += 1;
            self.counters.bytes_forwarded += (size - crate::item::PACKET_FRAMING_BYTES) as u64;
            // Tell the upstream peer this queue's start-of-packet emerged.
            fx.ready(emit_at, port);
        }
        let flight = match &front.item {
            Item::Packet(p) => FlightId(p.id()),
            _ => FlightId::NONE,
        };
        for &out in &outs {
            self.telemetry.record(
                emit_at,
                flight,
                EventKind::CrossbarForward {
                    hub: self.id.raw(),
                    input: port.index() as u8,
                    output: out.index() as u8,
                    bytes: size as u32,
                },
            );
        }
        self.trace.record_with(emit_at, Category::Crossbar, || {
            format!("{} fwd {port}->{outs:?} {}", self.id, front.item)
        });
        if front.item == Item::CloseAll {
            fx.defer(emit_at + wire, InternalEv::CloseBehind { input: port, outputs: outs });
        }
        // Release the charged bytes: from here the item streams through.
        let p = &mut self.ports[port.index()];
        p.queued_bytes -= front.charged;
        if let Some(f) = p.queue.front_mut() {
            f.charged = 0;
        }
        p.head = HeadState::Draining { seq };
        fx.defer(emit_at + wire, InternalEv::HeadDone { port, seq });
    }

    fn head_done_now(&mut self, now: Time, port: PortId, fx: &mut Effects) {
        let p = &mut self.ports[port.index()];
        p.queue.pop_front();
        p.head = HeadState::Idle;
        self.start_head(now, port, fx);
    }

    fn overflow_check(&mut self, now: Time, port: PortId, seq: u64, fx: &mut Effects) {
        let p = &mut self.ports[port.index()];
        let Some(idx) = p.queue.iter().position(|q| q.seq == seq) else {
            return; // already drained or removed
        };
        if idx == 0 && matches!(p.head, HeadState::Draining { .. }) {
            return; // forwarding began in time: cut-through kept up
        }
        let removed = p.queue.remove(idx).expect("index in range");
        p.queued_bytes -= removed.charged;
        self.counters.overflows += 1;
        self.trace.record_with(now, Category::Port, || {
            format!("{} {port} overflow: {}", self.id, removed.item)
        });
        if idx == 0 {
            // The blocked head was the victim; drop any retry it holds.
            self.retries.retain(|r| !(r.port == port && r.seq == seq));
            self.ports[port.index()].head = HeadState::Idle;
            self.start_head(now, port, fx);
        }
    }

    // ---------------------------------------------------------------
    // Controller
    // ---------------------------------------------------------------

    fn ctrl_exec(&mut self, now: Time, port: PortId, fx: &mut Effects) {
        let expected = match self.ports[port.index()].head {
            HeadState::AwaitingController { seq } => seq,
            _ => return, // stale: the head was removed (e.g. overflow)
        };
        let cmd = match self.ports[port.index()].queue.front() {
            Some(Queued { seq, item: Item::Command(c), .. }) if *seq == expected => *c,
            _ => return,
        };
        self.counters.commands_executed += 1;
        self.trace.record_with(now, Category::Controller, || {
            format!("{} exec [{cmd}] from {port}", self.id)
        });
        match cmd.op {
            Op::User(user) => self.exec_user(now, port, expected, cmd, user, fx),
            Op::Supervisor(sup) => {
                self.exec_supervisor(now, port, cmd, sup, fx);
                self.head_done_now(now, port, fx);
            }
        }
    }

    fn exec_user(
        &mut self,
        now: Time,
        port: PortId,
        seq: u64,
        cmd: Command,
        user: UserOp,
        fx: &mut Effects,
    ) {
        let target = cmd.param;
        match user {
            UserOp::Open { test, retry, reply } => {
                let ok = self.try_open(port, target, test);
                if ok {
                    self.counters.opens_succeeded += 1;
                    self.trace.record_with(now, Category::Crossbar, || {
                        format!("{} open {port}->{target}", self.id)
                    });
                    self.telemetry.record(
                        now,
                        FlightId::NONE,
                        EventKind::ConnectionOpen {
                            hub: self.id.raw(),
                            input: port.index() as u8,
                            output: target.index() as u8,
                        },
                    );
                    if reply {
                        self.emit_reply(now, port, Reply::Ack { hub: self.id, port: target }, fx);
                    }
                    self.head_done_now(now, port, fx);
                } else if retry {
                    self.counters.opens_retried += 1;
                    self.retries.push(PendingRetry { port, seq, cmd });
                    self.ports[port.index()].head = HeadState::AwaitingRetry { seq };
                } else {
                    self.counters.opens_failed += 1;
                    if reply {
                        self.emit_reply(now, port, Reply::Nack { hub: self.id, port: target }, fx);
                    }
                    self.head_done_now(now, port, fx);
                }
            }
            UserOp::Close => {
                if let Some(input) = self.xbar.disconnect_output(target) {
                    self.record_close(now, input, target);
                    self.wake_retries_for(now, target, fx);
                }
                self.head_done_now(now, port, fx);
            }
            UserOp::CloseInput => {
                for out in self.xbar.disconnect_input(target) {
                    self.record_close(now, target, out);
                    self.wake_retries_for(now, out, fx);
                }
                self.head_done_now(now, port, fx);
            }
            UserOp::Lock { retry, reply } => {
                let slot = &mut self.ports[target.index()].locked_by;
                let ok = match slot {
                    None => {
                        *slot = Some(port);
                        true
                    }
                    Some(holder) => *holder == port,
                };
                if ok {
                    self.counters.locks_acquired += 1;
                    if reply {
                        self.emit_reply(now, port, Reply::Ack { hub: self.id, port: target }, fx);
                    }
                    self.head_done_now(now, port, fx);
                } else if retry {
                    self.retries.push(PendingRetry { port, seq, cmd });
                    self.ports[port.index()].head = HeadState::AwaitingRetry { seq };
                } else {
                    if reply {
                        self.emit_reply(now, port, Reply::Nack { hub: self.id, port: target }, fx);
                    }
                    self.head_done_now(now, port, fx);
                }
            }
            UserOp::Unlock => {
                if self.ports[target.index()].locked_by == Some(port) {
                    self.ports[target.index()].locked_by = None;
                    self.wake_retries_for(now, target, fx);
                }
                self.head_done_now(now, port, fx);
            }
            UserOp::QueryStatus | UserOp::QueryReady => {
                let bits = self.status(target).pack();
                self.emit_reply(now, port, Reply::Status { hub: self.id, port: target, bits }, fx);
                self.head_done_now(now, port, fx);
            }
            UserOp::SetReady => {
                self.ports[target.index()].ready = true;
                self.wake_retries_for(now, target, fx);
                self.head_done_now(now, port, fx);
            }
            UserOp::ClearReady => {
                self.ports[target.index()].ready = false;
                self.head_done_now(now, port, fx);
            }
            UserOp::Nop => self.head_done_now(now, port, fx),
        }
    }

    /// Records a circuit teardown in the flight recorder.
    fn record_close(&mut self, now: Time, input: PortId, output: PortId) {
        self.telemetry.record(
            now,
            FlightId::NONE,
            EventKind::ConnectionClose {
                hub: self.id.raw(),
                input: input.index() as u8,
                output: output.index() as u8,
            },
        );
    }

    fn try_open(&mut self, input: PortId, output: PortId, test: bool) -> bool {
        if !self.in_range(output) || !self.ports[output.index()].enabled {
            return false;
        }
        if let Some(holder) = self.ports[output.index()].locked_by {
            if holder != input {
                return false;
            }
        }
        if test && self.cfg.flow_control && !self.ports[output.index()].ready {
            return false;
        }
        self.xbar.connect(input, output).is_ok()
    }

    fn exec_supervisor(
        &mut self,
        now: Time,
        port: PortId,
        cmd: Command,
        sup: SupervisorOp,
        fx: &mut Effects,
    ) {
        let target = cmd.param;
        match sup {
            SupervisorOp::Reset => {
                self.xbar.disconnect_all();
                self.retries.clear();
                for p in &mut self.ports {
                    p.locked_by = None;
                    p.ready = true;
                    // Heads parked in retry states would wait forever now.
                    if matches!(p.head, HeadState::AwaitingRetry { .. }) {
                        p.head = HeadState::Idle;
                        p.queued_bytes -= p.queue.front().map_or(0, |q| q.charged);
                        p.queue.pop_front();
                    }
                }
                self.counters.resets += 1;
            }
            SupervisorOp::EnablePort => {
                if self.in_range(target) {
                    self.ports[target.index()].enabled = true;
                }
            }
            SupervisorOp::DisablePort => {
                if self.in_range(target) {
                    self.xbar.disconnect_output(target);
                    for out in self.xbar.disconnect_input(target) {
                        self.wake_retries_for(now, out, fx);
                    }
                    let p = &mut self.ports[target.index()];
                    p.enabled = false;
                    p.locked_by = None;
                    self.counters.drops += p.queue.len() as u64;
                    p.queue.clear();
                    p.queued_bytes = 0;
                    p.head = HeadState::Idle;
                    self.retries.retain(|r| r.port != target && r.cmd.param != target);
                }
            }
            SupervisorOp::LoopbackOn => {
                if self.in_range(target) {
                    self.ports[target.index()].loopback = true;
                }
            }
            SupervisorOp::LoopbackOff => {
                if self.in_range(target) {
                    self.ports[target.index()].loopback = false;
                }
            }
            SupervisorOp::ReadCounters => {
                let executed = self.counters.commands_executed.min(u8::MAX as u64) as u8;
                self.emit_reply(now, port, Reply::Counters { hub: self.id, executed }, fx);
            }
            SupervisorOp::ClearCounters => self.counters.clear(),
        }
    }

    /// Re-submits retry-parked commands whose target output changed state.
    fn wake_retries_for(&mut self, now: Time, output: PortId, fx: &mut Effects) {
        let woken: Vec<PendingRetry> = {
            let mut kept = Vec::new();
            let mut woken = Vec::new();
            for r in self.retries.drain(..) {
                if r.cmd.param == output {
                    woken.push(r);
                } else {
                    kept.push(r);
                }
            }
            self.retries = kept;
            woken
        };
        for r in woken {
            // Each retry costs another serialized controller cycle.
            let exec_at = now.max(self.ctrl_free);
            self.ctrl_free = exec_at + self.cfg.cycle;
            self.ports[r.port.index()].head = HeadState::AwaitingController { seq: r.seq };
            fx.defer(exec_at + self.cfg.controller_latency, InternalEv::CtrlExec { port: r.port });
        }
    }

    // ---------------------------------------------------------------
    // Replies
    // ---------------------------------------------------------------

    /// Sends a reply generated *by this HUB* back up the issuing port's
    /// reverse fiber.
    fn emit_reply(&mut self, now: Time, issuing_port: PortId, reply: Reply, fx: &mut Effects) {
        fx.emit(now + self.cfg.reply_hop_latency, issuing_port, Item::Reply(reply));
    }

    /// Forwards a reply arriving on `port`'s input along the reverse
    /// path of the forward connection through this HUB.
    ///
    /// A forward connection `a -> port` means the route entered at `a`;
    /// the reply leaves on `a`'s outgoing fiber. Replies steal cycles:
    /// they ignore output-register busy times (§4.2.1).
    fn forward_reply(&mut self, now: Time, port: PortId, reply: Reply, fx: &mut Effects) {
        match self.xbar.input_for(port) {
            Some(a) => {
                self.counters.replies_forwarded += 1;
                fx.emit(now + self.cfg.reply_hop_latency, a, Item::Reply(reply));
            }
            None => {
                self.counters.replies_dropped += 1;
                self.trace.record_with(now, Category::Port, || {
                    format!("{} {port} reply dropped (no reverse path)", self.id)
                });
            }
        }
    }
}
