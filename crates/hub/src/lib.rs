//! # nectar-hub — the Nectar HUB, modelled cycle-faithfully
//!
//! The HUB is the switching element of the Nectar-net: an N×N crossbar
//! (16×16 in the 1989 prototype), one input queue and one output
//! register per port, and a central controller that executes a small
//! datalink command set — one command per 70 ns cycle.
//!
//! This crate is a *pure timed state machine*: no event queue, no I/O.
//! The system-integration layer (`nectar-core`) owns the simulation
//! loop and feeds the HUB via three entry points, collecting timed
//! [`Effects`](effects::Effects) to schedule. That keeps every
//! behaviour unit-testable in isolation.
//!
//! ## Timing calibration (paper §4)
//!
//! | Quantity | Paper | Model |
//! |---|---|---|
//! | Controller cycle | 70 ns | [`HubConfig::cycle`](config::HubConfig::cycle) |
//! | Setup + first byte through one HUB | 10 cycles (700 ns) | 240 ns command wire + 110 ns controller + 350 ns transit |
//! | Established-connection latency | 5 cycles (350 ns) | [`HubConfig::transit`](config::HubConfig::transit) |
//! | Per-fiber bandwidth | 100 Mbit/s | [`HubConfig::fiber_bandwidth`](config::HubConfig::fiber_bandwidth) |
//! | Input queue / max packet | 1 KB | [`HubConfig::queue_capacity`](config::HubConfig::queue_capacity) |
//!
//! ## Example: the Fig. 7 command walk
//!
//! ```
//! use nectar_hub::prelude::*;
//! use nectar_sim::time::Time;
//!
//! // "open with retry HUB2 P8" — first command of the paper's
//! // circuit-switching example.
//! let mut hub2 = Hub::new(HubId::new(2), HubConfig::prototype());
//! let mut fx = Effects::new();
//! let cmd = Command::open(false, true, false, HubId::new(2), PortId::new(8));
//! hub2.item_arrives(Time::ZERO, PortId::new(4), cmd.into(), &mut fx);
//! let exec = fx.internal[0].clone();
//! fx.clear();
//! hub2.internal(exec.at, exec.ev, &mut fx);
//! assert_eq!(hub2.connections(), vec![(PortId::new(4), PortId::new(8))]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod config;
pub mod counters;
pub mod crossbar;
pub mod effects;
pub mod hub;
pub mod id;
pub mod item;
pub mod pool;
pub mod status;

/// The most frequently used names, for glob import.
pub mod prelude {
    pub use crate::command::{Command, Op, Reply, SupervisorOp, UserOp};
    pub use crate::config::HubConfig;
    pub use crate::counters::HubCounters;
    pub use crate::crossbar::{ConnectError, Crossbar};
    pub use crate::effects::{Effects, Emission, Internal, InternalEv, ReadySignal};
    pub use crate::hub::Hub;
    pub use crate::id::{HubId, PortId};
    pub use crate::item::{Item, Packet};
    pub use crate::pool::{BufPool, PoolStats};
    pub use crate::status::PortStatus;
}
