//! Timed outputs of the HUB state machine.
//!
//! The HUB model is a *pure* state machine: the system-integration
//! layer calls it with an input and a timestamp, and it appends the
//! consequences — fiber emissions, flow-control signals, and internal
//! callbacks — to an [`Effects`] buffer. The caller owns the event
//! queue: it schedules each effect at its absolute time and routes
//! emissions/signals to whatever is at the other end of the fiber
//! (a CAB or another HUB). Internal callbacks must be fed back via
//! [`Hub::internal`](crate::hub::Hub::internal) at their timestamp.

use crate::id::PortId;
use crate::item::Item;
use nectar_sim::time::Time;

/// An item whose first byte leaves a port's output register at `at`;
/// its last byte follows after the item's wire time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Emission {
    /// When the first byte leaves the output register.
    pub at: Time,
    /// The port whose outgoing fiber carries the item.
    pub port: PortId,
    /// The item on the wire.
    pub item: Item,
}

/// A flow-control signal sent on a port's *outgoing* fiber to the
/// upstream peer, indicating that the start-of-packet has emerged from
/// this port's input queue (§4.2.3). The peer sets the ready bit of the
/// port the signal arrives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadySignal {
    /// When the signal leaves.
    pub at: Time,
    /// The port whose upstream peer should be notified.
    pub port: PortId,
}

/// A deferred state transition inside the HUB; the caller must invoke
/// [`Hub::internal`](crate::hub::Hub::internal) with it at its time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Internal {
    /// When the transition happens.
    pub at: Time,
    /// What happens.
    pub ev: InternalEv,
}

/// Kinds of deferred internal transitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InternalEv {
    /// The central controller executes the command at the head of
    /// `port`'s input queue.
    CtrlExec {
        /// Port whose head command executes.
        port: PortId,
    },
    /// The head item of `port`'s input queue has fully drained.
    HeadDone {
        /// Port whose head finished.
        port: PortId,
        /// Arrival sequence number of the item (guards staleness).
        seq: u64,
    },
    /// Check whether a partially buffered item overflowed the 1 KB
    /// input queue because forwarding stayed blocked too long.
    OverflowCheck {
        /// Port to check.
        port: PortId,
        /// Arrival sequence number of the item.
        seq: u64,
    },
    /// Check whether an item is still waiting for a connection that
    /// never arrived (its open command was lost); if so, discard it so
    /// the datalink above can recover.
    StuckCheck {
        /// Port to check.
        port: PortId,
        /// Arrival sequence number of the item.
        seq: u64,
    },
    /// A `close all` marker finished passing through these output
    /// registers; break the connections it travelled over.
    CloseBehind {
        /// The input queue the marker came from.
        input: PortId,
        /// The output registers it passed through.
        outputs: Vec<PortId>,
    },
}

/// Buffer of consequences appended by HUB entry points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Effects {
    /// Items leaving output registers.
    pub emissions: Vec<Emission>,
    /// Flow-control signals to upstream peers.
    pub ready_signals: Vec<ReadySignal>,
    /// Deferred internal transitions to feed back.
    pub internal: Vec<Internal>,
}

impl Effects {
    /// Creates an empty buffer.
    pub fn new() -> Effects {
        Effects::default()
    }

    /// `true` if no effects were produced.
    pub fn is_empty(&self) -> bool {
        self.emissions.is_empty() && self.ready_signals.is_empty() && self.internal.is_empty()
    }

    /// Empties the buffer (for reuse across calls).
    pub fn clear(&mut self) {
        self.emissions.clear();
        self.ready_signals.clear();
        self.internal.clear();
    }

    pub(crate) fn emit(&mut self, at: Time, port: PortId, item: Item) {
        self.emissions.push(Emission { at, port, item });
    }

    pub(crate) fn ready(&mut self, at: Time, port: PortId) {
        self.ready_signals.push(ReadySignal { at, port });
    }

    pub(crate) fn defer(&mut self, at: Time, ev: InternalEv) {
        self.internal.push(Internal { at, ev });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_accumulates_and_clears() {
        let mut fx = Effects::new();
        assert!(fx.is_empty());
        fx.emit(Time::from_nanos(1), PortId::new(0), Item::CloseAll);
        fx.ready(Time::from_nanos(2), PortId::new(1));
        fx.defer(Time::from_nanos(3), InternalEv::CtrlExec { port: PortId::new(2) });
        assert!(!fx.is_empty());
        assert_eq!(fx.emissions.len(), 1);
        assert_eq!(fx.ready_signals.len(), 1);
        assert_eq!(fx.internal.len(), 1);
        fx.clear();
        assert!(fx.is_empty());
    }
}
