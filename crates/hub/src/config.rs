//! HUB timing and sizing parameters.
//!
//! Defaults are the published numbers of the 1989 prototype; every
//! field can be overridden to model the planned VLSI re-implementation
//! ("128 × 128 crossbars are possible with custom VLSI", §3.1) or for
//! ablation studies.

use nectar_sim::time::Dur;
use nectar_sim::units::Bandwidth;

/// Configuration of one HUB.
///
/// # Examples
///
/// ```
/// use nectar_hub::config::HubConfig;
///
/// let cfg = HubConfig::default();
/// assert_eq!(cfg.ports, 16);
/// assert_eq!(cfg.cycle.nanos(), 70);
/// // Setup + first byte through one HUB: ten cycles (paper §4).
/// assert_eq!((cfg.connect_latency() + cfg.transit).nanos(), 700);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HubConfig {
    /// I/O ports on the backplane. Prototype: 16 (two 8-port boards).
    pub ports: usize,
    /// Central-controller cycle: a new connection can be set up every
    /// cycle. Prototype: 70 ns.
    pub cycle: Dur,
    /// Input-queue capacity, which is also the maximum packet size for
    /// packet switching. Prototype: 1 KB.
    pub queue_capacity: usize,
    /// Latency from an item reaching the head of an input queue to its
    /// first byte leaving the output register: five cycles (350 ns).
    pub transit: Dur,
    /// Latency from a fully received command to its effect inside the
    /// controller, beyond the serialization cycle. Calibrated so that
    /// connection setup + first data byte totals ten cycles (700 ns):
    /// 240 ns command wire time + 110 ns controller + 350 ns transit.
    pub controller_latency: Dur,
    /// Effective bandwidth of each fiber (TAXI limit: 100 Mbit/s).
    pub fiber_bandwidth: Bandwidth,
    /// Per-hop latency of a reply symbol stealing cycles on the reverse
    /// path. Replies are never blocked (§4.2.1); this bounds their
    /// per-HUB cost: transit plus its own wire time.
    pub reply_hop_latency: Dur,
    /// When `false`, ready bits are ignored by `test open` commands —
    /// the flow-control ablation of DESIGN.md §5.
    pub flow_control: bool,
    /// How long a queued item may wait for a crossbar connection that
    /// never comes (e.g. its `test open` command was lost) before the
    /// port discards it so the datalink can recover (§6.2.1: the
    /// datalink "recovers from framing errors and lost HUB commands").
    pub stuck_timeout: Dur,
}

impl HubConfig {
    /// The prototype HUB exactly as published.
    pub fn prototype() -> HubConfig {
        let cycle = Dur::from_nanos(70);
        HubConfig {
            ports: 16,
            cycle,
            queue_capacity: 1024,
            transit: cycle * 5,
            controller_latency: Dur::from_nanos(110),
            fiber_bandwidth: Bandwidth::from_mbit_per_sec(100),
            reply_hop_latency: cycle * 5 + Dur::from_nanos(240),
            flow_control: true,
            stuck_timeout: Dur::from_millis(1),
        }
    }

    /// The planned VLSI re-implementation (§3.1: "128 × 128 crossbars
    /// are possible with custom VLSI", §3.2: "this will lead to larger
    /// systems with higher performance and lower cost"). A projection,
    /// not a published artifact: twice the clock, eight times the
    /// ports, four times the queue, and 200 Mbit/s links.
    pub fn vlsi() -> HubConfig {
        let cycle = Dur::from_nanos(35);
        HubConfig {
            ports: 128,
            cycle,
            queue_capacity: 4096,
            transit: cycle * 5,
            controller_latency: Dur::from_nanos(55),
            fiber_bandwidth: Bandwidth::from_mbit_per_sec(200),
            reply_hop_latency: cycle * 5 + Dur::from_nanos(120),
            flow_control: true,
            stuck_timeout: Dur::from_millis(1),
        }
    }

    /// Time for `bytes` to serialize onto a fiber.
    pub fn wire_time(&self, bytes: usize) -> Dur {
        self.fiber_bandwidth.transfer_time(bytes)
    }

    /// Latency from a command's *first* byte arriving at a port to the
    /// connection existing (command wire time + controller latency),
    /// assuming an idle controller.
    pub fn connect_latency(&self) -> Dur {
        self.wire_time(crate::command::COMMAND_WIRE_BYTES) + self.controller_latency
    }

    /// Conservative-parallel lookahead: a hard lower bound on the
    /// delay between any event inside one HUB and its earliest
    /// possible output on an inter-HUB fiber. Every forwarded item
    /// pays at least [`transit`](HubConfig::transit) from queue head
    /// to output register, every reply symbol at least
    /// [`reply_hop_latency`](HubConfig::reply_hop_latency), and every
    /// freshly commanded connection at least
    /// [`connect_latency`](HubConfig::connect_latency) on top of
    /// transit — so the minimum of the three bounds them all. A
    /// sharded simulation may execute `lookahead` (plus fiber
    /// propagation) beyond the global minimum event time without ever
    /// missing a cross-shard arrival (prototype: 350 ns).
    pub fn lookahead(&self) -> Dur {
        self.transit.min(self.reply_hop_latency).min(self.connect_latency())
    }
}

impl Default for HubConfig {
    fn default() -> HubConfig {
        HubConfig::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_constants_match_paper() {
        let cfg = HubConfig::prototype();
        assert_eq!(cfg.ports, 16);
        assert_eq!(cfg.cycle, Dur::from_nanos(70));
        assert_eq!(cfg.queue_capacity, 1024);
        // Established-connection per-item latency: five cycles = 350 ns.
        assert_eq!(cfg.transit, Dur::from_nanos(350));
        // One byte at 100 Mbit/s = 80 ns.
        assert_eq!(cfg.wire_time(1), Dur::from_nanos(80));
    }

    #[test]
    fn setup_plus_first_byte_is_ten_cycles() {
        let cfg = HubConfig::prototype();
        // Command (3 B = 240 ns) + controller (110 ns) + transit (350 ns)
        // = 700 ns = 10 cycles of 70 ns.
        let total = cfg.connect_latency() + cfg.transit;
        assert_eq!(total, cfg.cycle * 10);
    }

    #[test]
    fn config_is_overridable() {
        let cfg = HubConfig { ports: 128, ..HubConfig::prototype() };
        assert_eq!(cfg.ports, 128);
        assert_eq!(cfg.queue_capacity, 1024);
    }
}
