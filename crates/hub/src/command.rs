//! The HUB datalink command set.
//!
//! Each command is a three-byte sequence on the fiber —
//! `command, HUB ID, param` (paper §4.2). The prototype implements
//! "38 user commands and 14 supervisor commands"; the paper names only
//! a subset, so this model implements the complete *semantic space*
//! those names span and documents the encoding:
//!
//! * **Open family** (8 variants): `{open, test open} × {plain, with
//!   retry} × {plain, and reply}`. *Test* opens succeed only when the
//!   target output port's ready bit is set (packet-switching flow
//!   control); *retry* keeps the command pending inside the central
//!   controller until it succeeds; *reply* sends an acknowledgement
//!   symbol back along the reverse path once the connection is made.
//! * **Close family**: `close` (one output), `close input` (every
//!   output fed by an input), and the in-band `close all` marker that
//!   travels behind the data and tears the route down as it passes.
//! * **Lock family** (4 variants): `{lock, lock with retry} × {plain,
//!   and reply}` plus `unlock` — reserve an output port so a multi-hop
//!   route can be built without losing a leg to a competing CAB.
//! * **Status family**: `query status`, `query ready`, and the manual
//!   flow-control overrides `set ready` / `clear ready`.
//! * **Supervisor commands**: reset, per-port enable/disable, loopback
//!   on/off, and counter read/clear — the testing/reconfiguration
//!   operations of §4 goal 4.

use crate::id::{HubId, PortId};
use core::fmt;

/// A user command operation (the first wire byte selects one).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UserOp {
    /// Connect the issuing input port to the output port named by the
    /// command parameter.
    Open {
        /// Succeed only if the output port's ready bit is set
        /// (packet-switching flow control, §4.2.3).
        test: bool,
        /// Keep trying inside the controller until the open succeeds.
        retry: bool,
        /// Send an acknowledgement back along the reverse path on
        /// success (or a negative one on a non-retry failure).
        reply: bool,
    },
    /// Break the connection feeding the named output port.
    Close,
    /// Break every connection fed by the named input port.
    CloseInput,
    /// Reserve the named output port for the issuing input port.
    Lock {
        /// Keep trying until the lock is acquired.
        retry: bool,
        /// Acknowledge acquisition along the reverse path.
        reply: bool,
    },
    /// Release a lock held by the issuing input port.
    Unlock,
    /// Reply with the status-table entry for the named port.
    QueryStatus,
    /// Reply with the named port's ready bit.
    QueryReady,
    /// Force the named port's ready bit on (network management).
    SetReady,
    /// Force the named port's ready bit off (network management).
    ClearReady,
    /// No operation; consumes a controller cycle (used for testing).
    Nop,
}

impl UserOp {
    /// Every user operation, for exhaustive tests.
    pub const ALL: [UserOp; 18] = [
        UserOp::Open { test: false, retry: false, reply: false },
        UserOp::Open { test: false, retry: false, reply: true },
        UserOp::Open { test: false, retry: true, reply: false },
        UserOp::Open { test: false, retry: true, reply: true },
        UserOp::Open { test: true, retry: false, reply: false },
        UserOp::Open { test: true, retry: false, reply: true },
        UserOp::Open { test: true, retry: true, reply: false },
        UserOp::Open { test: true, retry: true, reply: true },
        UserOp::Close,
        UserOp::CloseInput,
        UserOp::Lock { retry: false, reply: false },
        UserOp::Lock { retry: false, reply: true },
        UserOp::Lock { retry: true, reply: false },
        UserOp::Lock { retry: true, reply: true },
        UserOp::Unlock,
        UserOp::QueryStatus,
        UserOp::QueryReady,
        UserOp::SetReady,
        // Nop is encoded but excluded here to keep the array const-sized
        // friendly; see `ALL_WITH_NOP`.
    ];

    /// [`UserOp::ALL`] plus the remaining operations.
    pub fn all() -> Vec<UserOp> {
        let mut v = UserOp::ALL.to_vec();
        v.push(UserOp::ClearReady);
        v.push(UserOp::Nop);
        v
    }

    fn opcode(self) -> u8 {
        match self {
            UserOp::Open { test, retry, reply } => {
                0x10 | (test as u8) << 2 | (retry as u8) << 1 | reply as u8
            }
            UserOp::Close => 0x20,
            UserOp::CloseInput => 0x21,
            UserOp::Lock { retry, reply } => 0x30 | (retry as u8) << 1 | reply as u8,
            UserOp::Unlock => 0x34,
            UserOp::QueryStatus => 0x40,
            UserOp::QueryReady => 0x41,
            UserOp::SetReady => 0x42,
            UserOp::ClearReady => 0x43,
            UserOp::Nop => 0x00,
        }
    }

    fn from_opcode(op: u8) -> Option<UserOp> {
        Some(match op {
            0x10..=0x17 => UserOp::Open {
                test: op & 0b100 != 0,
                retry: op & 0b010 != 0,
                reply: op & 0b001 != 0,
            },
            0x20 => UserOp::Close,
            0x21 => UserOp::CloseInput,
            0x30..=0x33 => UserOp::Lock { retry: op & 0b010 != 0, reply: op & 0b001 != 0 },
            0x34 => UserOp::Unlock,
            0x40 => UserOp::QueryStatus,
            0x41 => UserOp::QueryReady,
            0x42 => UserOp::SetReady,
            0x43 => UserOp::ClearReady,
            0x00 => UserOp::Nop,
            _ => return None,
        })
    }
}

impl fmt::Display for UserOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            UserOp::Open { test, retry, reply } => {
                if test {
                    f.write_str("test ")?;
                }
                f.write_str("open")?;
                if retry {
                    f.write_str(" with retry")?;
                }
                if reply {
                    f.write_str(if retry { " and reply" } else { " with reply" })?;
                }
                Ok(())
            }
            UserOp::Close => f.write_str("close"),
            UserOp::CloseInput => f.write_str("close input"),
            UserOp::Lock { retry, reply } => {
                f.write_str("lock")?;
                if retry {
                    f.write_str(" with retry")?;
                }
                if reply {
                    f.write_str(if retry { " and reply" } else { " with reply" })?;
                }
                Ok(())
            }
            UserOp::Unlock => f.write_str("unlock"),
            UserOp::QueryStatus => f.write_str("query status"),
            UserOp::QueryReady => f.write_str("query ready"),
            UserOp::SetReady => f.write_str("set ready"),
            UserOp::ClearReady => f.write_str("clear ready"),
            UserOp::Nop => f.write_str("nop"),
        }
    }
}

/// A supervisor command operation (system testing and reconfiguration).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SupervisorOp {
    /// Clear every connection, lock, and pending retry on the HUB.
    Reset,
    /// Bring the named port into service.
    EnablePort,
    /// Take the named port out of service (existing connections to or
    /// from it are broken).
    DisablePort,
    /// Route the named port's input queue straight to its own output
    /// register, for link testing.
    LoopbackOn,
    /// Undo [`SupervisorOp::LoopbackOn`].
    LoopbackOff,
    /// Reply with the HUB's event counters.
    ReadCounters,
    /// Zero the HUB's event counters.
    ClearCounters,
}

impl SupervisorOp {
    /// Every supervisor operation, for exhaustive tests.
    pub const ALL: [SupervisorOp; 7] = [
        SupervisorOp::Reset,
        SupervisorOp::EnablePort,
        SupervisorOp::DisablePort,
        SupervisorOp::LoopbackOn,
        SupervisorOp::LoopbackOff,
        SupervisorOp::ReadCounters,
        SupervisorOp::ClearCounters,
    ];

    fn opcode(self) -> u8 {
        match self {
            SupervisorOp::Reset => 0x80,
            SupervisorOp::EnablePort => 0x81,
            SupervisorOp::DisablePort => 0x82,
            SupervisorOp::LoopbackOn => 0x83,
            SupervisorOp::LoopbackOff => 0x84,
            SupervisorOp::ReadCounters => 0x85,
            SupervisorOp::ClearCounters => 0x86,
        }
    }

    fn from_opcode(op: u8) -> Option<SupervisorOp> {
        Some(match op {
            0x80 => SupervisorOp::Reset,
            0x81 => SupervisorOp::EnablePort,
            0x82 => SupervisorOp::DisablePort,
            0x83 => SupervisorOp::LoopbackOn,
            0x84 => SupervisorOp::LoopbackOff,
            0x85 => SupervisorOp::ReadCounters,
            0x86 => SupervisorOp::ClearCounters,
            _ => return None,
        })
    }
}

impl fmt::Display for SupervisorOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SupervisorOp::Reset => "reset",
            SupervisorOp::EnablePort => "enable port",
            SupervisorOp::DisablePort => "disable port",
            SupervisorOp::LoopbackOn => "loopback on",
            SupervisorOp::LoopbackOff => "loopback off",
            SupervisorOp::ReadCounters => "read counters",
            SupervisorOp::ClearCounters => "clear counters",
        };
        f.write_str(s)
    }
}

/// User or supervisor operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// One of the 38-command user family.
    User(UserOp),
    /// One of the 14-command supervisor family.
    Supervisor(SupervisorOp),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::User(u) => u.fmt(f),
            Op::Supervisor(s) => s.fmt(f),
        }
    }
}

/// A complete three-byte HUB command: operation, addressed HUB, and a
/// parameter (usually a port on that HUB).
///
/// # Examples
///
/// The first command of the paper's Fig. 7 circuit-switching example,
/// "`open with retry HUB2 P8`":
///
/// ```
/// use nectar_hub::command::{Command, UserOp};
/// use nectar_hub::id::{HubId, PortId};
///
/// let cmd = Command::user(
///     UserOp::Open { test: false, retry: true, reply: false },
///     HubId::new(2),
///     PortId::new(8),
/// );
/// assert_eq!(cmd.to_string(), "open with retry HUB2 P8");
/// let bytes = cmd.encode();
/// assert_eq!(Command::decode(bytes), Some(cmd));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Command {
    /// The operation to perform.
    pub op: Op,
    /// The HUB this command is addressed to; other HUBs forward it.
    pub hub: HubId,
    /// The port (or other) parameter.
    pub param: PortId,
}

/// Wire size of one command: `command, HUB ID, param`.
pub const COMMAND_WIRE_BYTES: usize = 3;

impl Command {
    /// Builds a user command.
    pub fn user(op: UserOp, hub: HubId, param: PortId) -> Command {
        Command { op: Op::User(op), hub, param }
    }

    /// Builds a supervisor command.
    pub fn supervisor(op: SupervisorOp, hub: HubId, param: PortId) -> Command {
        Command { op: Op::Supervisor(op), hub, param }
    }

    /// Convenience: `open` with the given flags (the workhorse of §4.2).
    pub fn open(test: bool, retry: bool, reply: bool, hub: HubId, port: PortId) -> Command {
        Command::user(UserOp::Open { test, retry, reply }, hub, port)
    }

    /// Encodes to the three wire bytes.
    pub fn encode(self) -> [u8; COMMAND_WIRE_BYTES] {
        let op = match self.op {
            Op::User(u) => u.opcode(),
            Op::Supervisor(s) => s.opcode(),
        };
        [op, self.hub.raw(), self.param.raw()]
    }

    /// Decodes three wire bytes; `None` if the opcode is unassigned.
    pub fn decode(bytes: [u8; COMMAND_WIRE_BYTES]) -> Option<Command> {
        let op = if bytes[0] & 0x80 != 0 {
            Op::Supervisor(SupervisorOp::from_opcode(bytes[0])?)
        } else {
            Op::User(UserOp::from_opcode(bytes[0])?)
        };
        Some(Command { op, hub: HubId::new(bytes[1]), param: PortId::new(bytes[2]) })
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.op, self.hub, self.param)
    }
}

/// A reply symbol travelling the reverse path ("by stealing cycles from
/// these resources whenever necessary, the reply is never blocked",
/// §4.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Reply {
    /// The connection (or lock) requested with a `reply` flag was made.
    Ack {
        /// HUB that executed the command.
        hub: HubId,
        /// Output port that was connected or locked.
        port: PortId,
    },
    /// A non-retry command with a `reply` flag failed.
    Nack {
        /// HUB that rejected the command.
        hub: HubId,
        /// Output port that could not be connected or locked.
        port: PortId,
    },
    /// Answer to `query status`.
    Status {
        /// HUB that answered.
        hub: HubId,
        /// Port queried.
        port: PortId,
        /// Packed status bits (see [`crate::status::PortStatus::pack`]).
        bits: u8,
    },
    /// Answer to `read counters` (one counter per reply in this model).
    Counters {
        /// HUB that answered.
        hub: HubId,
        /// Total commands executed, saturating at `u8::MAX` on the wire.
        executed: u8,
    },
}

/// Wire size of one reply symbol.
pub const REPLY_WIRE_BYTES: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_user_op_roundtrips() {
        for op in UserOp::all() {
            for hub in [0u8, 1, 2, 255] {
                let cmd = Command::user(op, HubId::new(hub), PortId::new(7));
                assert_eq!(Command::decode(cmd.encode()), Some(cmd), "{op:?}");
            }
        }
    }

    #[test]
    fn every_supervisor_op_roundtrips() {
        for op in SupervisorOp::ALL {
            let cmd = Command::supervisor(op, HubId::new(3), PortId::new(15));
            assert_eq!(Command::decode(cmd.encode()), Some(cmd), "{op:?}");
        }
    }

    #[test]
    fn unassigned_opcodes_rejected() {
        assert_eq!(Command::decode([0x7F, 0, 0]), None);
        assert_eq!(Command::decode([0xFF, 0, 0]), None);
        assert_eq!(Command::decode([0x50, 0, 0]), None);
    }

    #[test]
    fn opcodes_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for op in UserOp::all() {
            assert!(seen.insert(op.opcode()), "duplicate opcode for {op:?}");
        }
        for op in SupervisorOp::ALL {
            assert!(seen.insert(op.opcode()), "duplicate opcode for {op:?}");
        }
    }

    #[test]
    fn display_matches_paper_phrasing() {
        // These strings are copied from §4.2.1 and §4.2.3 of the paper.
        let c1 = Command::open(false, true, true, HubId::new(1), PortId::new(8));
        assert_eq!(c1.to_string(), "open with retry and reply HUB1 P8");
        let c2 = Command::open(true, true, false, HubId::new(2), PortId::new(8));
        assert_eq!(c2.to_string(), "test open with retry HUB2 P8");
    }

    #[test]
    fn supervisor_bit_is_the_high_bit() {
        for op in SupervisorOp::ALL {
            assert!(op.opcode() & 0x80 != 0);
        }
        for op in UserOp::all() {
            assert!(op.opcode() & 0x80 == 0);
        }
    }

    #[test]
    fn user_family_count_matches_paper_scale() {
        // The prototype has 38 user commands; our semantic model spans
        // the same families with 20 distinct encodings.
        assert_eq!(UserOp::all().len(), 20);
    }
}
