//! Wire items: the units that travel through fibers and HUB queues.
//!
//! The physical fiber carries a byte stream in which the TAXI chips
//! distinguish data bytes from control symbols (`start of packet`,
//! `end of packet`, command and reply symbols). Simulating every byte
//! would cost one event per 80 ns of wire time, so the model groups the
//! stream into [`Item`]s — a command, a reply, a framed data packet, or
//! the in-band `close all` marker — each of which knows its wire size.
//! Timing stays byte-exact: an item's tail is
//! `Bandwidth::transfer_time(wire_bytes)` behind its head.

use crate::command::{Command, Reply, COMMAND_WIRE_BYTES, REPLY_WIRE_BYTES};
use core::fmt;
use std::sync::Arc;

/// A framed data packet: `start of packet`, payload bytes, `end of
/// packet`.
///
/// The payload is shared, not copied, when a packet fans out through a
/// multicast connection, and stays shared all the way to the receiving
/// CAB: [`Packet::share`] hands out the refcounted buffer so delivery
/// needs no copy, and a [`pool`](crate::pool::BufPool) can reclaim the
/// `Vec` once the last reference drops.
///
/// # Examples
///
/// ```
/// use nectar_hub::item::Packet;
/// let p = Packet::new(7, vec![1, 2, 3]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.wire_bytes(), 5); // SOP + 3 + EOP
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Packet {
    id: u64,
    data: Arc<Vec<u8>>,
}

/// Framing overhead of a packet on the wire: `start of packet` and
/// `end of packet` symbols.
pub const PACKET_FRAMING_BYTES: usize = 2;

impl Packet {
    /// Creates a packet carrying `data`. The `id` tags the packet for
    /// tracing and end-to-end accounting; it does not travel on the
    /// wire.
    pub fn new(id: u64, data: impl Into<Vec<u8>>) -> Packet {
        Packet { id, data: Arc::new(data.into()) }
    }

    /// Creates a packet around an already-shared buffer without
    /// copying it (e.g. a pooled buffer the sender just filled).
    pub fn from_shared(id: u64, data: Arc<Vec<u8>>) -> Packet {
        Packet { id, data }
    }

    /// The tracing id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Payload bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// A shared handle to the payload buffer: delivery without a copy.
    pub fn share(&self) -> Arc<Vec<u8>> {
        Arc::clone(&self.data)
    }

    /// Consumes the packet, yielding its buffer without bumping the
    /// refcount — the terminal-drop path (fault injection, queue
    /// overrun) hands this to the pool so destroyed packets still
    /// conserve buffers.
    pub fn into_shared(self) -> Arc<Vec<u8>> {
        self.data
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for an empty payload (legal: a bare SOP/EOP pair).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes this packet occupies on the wire, including framing.
    pub fn wire_bytes(&self) -> usize {
        self.len() + PACKET_FRAMING_BYTES
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "packet#{} ({} B)", self.id, self.len())
    }
}

/// Wire size of the in-band `close all` marker.
pub const CLOSE_ALL_WIRE_BYTES: usize = 3;

/// One unit travelling on a fiber or through a HUB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// A three-byte command; consumed by the addressed HUB, forwarded
    /// by every other HUB.
    Command(Command),
    /// A reply symbol travelling the reverse path; never queued.
    Reply(Reply),
    /// A framed data packet.
    Packet(Packet),
    /// The `close all` marker: travels behind the data and closes each
    /// connection as it passes through the output register (§4.2.1).
    CloseAll,
}

impl Item {
    /// Bytes this item occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Item::Command(_) => COMMAND_WIRE_BYTES,
            Item::Reply(_) => REPLY_WIRE_BYTES,
            Item::Packet(p) => p.wire_bytes(),
            Item::CloseAll => CLOSE_ALL_WIRE_BYTES,
        }
    }

    /// `true` for items that pass through input queues (replies bypass
    /// them, "stealing cycles" per §4.2.1).
    pub fn is_queued(&self) -> bool {
        !matches!(self, Item::Reply(_))
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Command(c) => write!(f, "cmd[{c}]"),
            Item::Reply(r) => write!(f, "reply[{r:?}]"),
            Item::Packet(p) => p.fmt(f),
            Item::CloseAll => f.write_str("close all"),
        }
    }
}

impl From<Command> for Item {
    fn from(c: Command) -> Item {
        Item::Command(c)
    }
}

impl From<Packet> for Item {
    fn from(p: Packet) -> Item {
        Item::Packet(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::UserOp;
    use crate::id::{HubId, PortId};

    #[test]
    fn wire_sizes() {
        let cmd = Command::user(UserOp::Nop, HubId::new(0), PortId::new(0));
        assert_eq!(Item::from(cmd).wire_bytes(), 3);
        assert_eq!(Item::CloseAll.wire_bytes(), 3);
        assert_eq!(Item::from(Packet::new(0, vec![0u8; 1024])).wire_bytes(), 1026);
        assert_eq!(
            Item::Reply(Reply::Ack { hub: HubId::new(1), port: PortId::new(2) }).wire_bytes(),
            3
        );
    }

    #[test]
    fn packet_payload_is_shared_on_clone() {
        let p = Packet::new(1, vec![9u8; 100]);
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.data, &q.data), "multicast clones must share payload");
        assert!(Arc::ptr_eq(&p.share(), &q.data), "share() hands out the same buffer");
    }

    #[test]
    fn from_shared_does_not_copy() {
        let buf = Arc::new(vec![5u8; 32]);
        let p = Packet::from_shared(4, Arc::clone(&buf));
        assert!(Arc::ptr_eq(&p.share(), &buf));
        assert_eq!(p.len(), 32);
    }

    #[test]
    fn empty_packet_is_legal() {
        let p = Packet::new(2, Vec::new());
        assert!(p.is_empty());
        assert_eq!(p.wire_bytes(), PACKET_FRAMING_BYTES);
    }

    #[test]
    fn replies_bypass_queues() {
        assert!(!Item::Reply(Reply::Ack { hub: HubId::new(0), port: PortId::new(0) }).is_queued());
        assert!(Item::CloseAll.is_queued());
        assert!(Item::from(Packet::new(0, vec![1])).is_queued());
    }

    #[test]
    fn display_forms() {
        let p = Packet::new(3, vec![0u8; 64]);
        assert_eq!(p.to_string(), "packet#3 (64 B)");
        assert_eq!(Item::CloseAll.to_string(), "close all");
    }
}
