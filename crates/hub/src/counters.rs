//! HUB event counters, readable with the `read counters` supervisor
//! command and by the experiment harness.

use nectar_sim::metrics::MetricsRegistry;

/// Cumulative event counts for one HUB since power-on (or the last
/// `clear counters` supervisor command).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HubCounters {
    /// Commands executed by the central controller (user + supervisor).
    pub commands_executed: u64,
    /// Open commands that made a connection.
    pub opens_succeeded: u64,
    /// Open commands that failed and were dropped (no retry flag).
    pub opens_failed: u64,
    /// Open attempts that blocked and entered the retry list.
    pub opens_retried: u64,
    /// Lock commands that acquired a lock.
    pub locks_acquired: u64,
    /// Packets forwarded through the crossbar (counted per input).
    pub packets_forwarded: u64,
    /// Extra packet copies emitted when one input drove several
    /// outputs at once (multicast fan-out or a stale circuit member).
    pub fanout_copies: u64,
    /// Payload bytes forwarded through the crossbar.
    pub bytes_forwarded: u64,
    /// Reply symbols forwarded along reverse paths.
    pub replies_forwarded: u64,
    /// Reply symbols dropped for lack of a reverse connection.
    pub replies_dropped: u64,
    /// Items lost to input-queue overflow.
    pub overflows: u64,
    /// Items dropped for other reasons (disabled port, bad command).
    pub drops: u64,
    /// `reset` supervisor commands executed.
    pub resets: u64,
}

impl HubCounters {
    /// All-zero counters.
    pub fn new() -> HubCounters {
        HubCounters::default()
    }

    /// Zeroes every counter (the `clear counters` command).
    pub fn clear(&mut self) {
        *self = HubCounters::default();
    }

    /// Total items lost for any reason.
    pub fn total_losses(&self) -> u64 {
        self.overflows + self.drops + self.replies_dropped + self.opens_failed
    }

    /// Registers every counter into `reg` under `prefix` (e.g.
    /// `hub0.`), so the harness reports from one registry instead of
    /// per-crate structs.
    pub fn register_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let fields: [(&str, u64); 13] = [
            ("commands_executed", self.commands_executed),
            ("opens_succeeded", self.opens_succeeded),
            ("opens_failed", self.opens_failed),
            ("opens_retried", self.opens_retried),
            ("locks_acquired", self.locks_acquired),
            ("packets_forwarded", self.packets_forwarded),
            ("fanout_copies", self.fanout_copies),
            ("bytes_forwarded", self.bytes_forwarded),
            ("replies_forwarded", self.replies_forwarded),
            ("replies_dropped", self.replies_dropped),
            ("overflows", self.overflows),
            ("drops", self.drops),
            ("resets", self.resets),
        ];
        for (name, v) in fields {
            reg.counter_add(&format!("{prefix}{name}"), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_clears() {
        let mut c = HubCounters::new();
        assert_eq!(c.total_losses(), 0);
        c.overflows = 2;
        c.drops = 3;
        c.opens_failed = 1;
        assert_eq!(c.total_losses(), 6);
        c.clear();
        assert_eq!(c, HubCounters::default());
    }

    #[test]
    fn registers_all_fields() {
        let mut c = HubCounters::new();
        c.packets_forwarded = 9;
        c.bytes_forwarded = 900;
        let mut reg = MetricsRegistry::new();
        c.register_into(&mut reg, "hub0.");
        assert_eq!(reg.counter("hub0.packets_forwarded"), 9);
        assert_eq!(reg.counter("hub0.bytes_forwarded"), 900);
        assert_eq!(reg.counters().count(), 13);
    }
}
