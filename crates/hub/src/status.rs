//! The HUB status table.
//!
//! "A status table is used to keep track of existing connections and to
//! ensure that no new connections are made to output registers that are
//! already in use. The status table is maintained by a central
//! controller and can be interrogated by the CABs" (§4.1). This module
//! holds the per-port view a `query status` command answers with.

use crate::id::PortId;
use core::fmt;

/// Status of one port, as reported to a `query status` command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortStatus {
    /// The input queue currently driving this port's output register.
    pub driven_by: Option<PortId>,
    /// The input holding a lock on this port's output register.
    pub locked_by: Option<PortId>,
    /// The ready bit: the downstream input queue can accept a packet.
    pub ready: bool,
    /// The port is in service (supervisor enable/disable).
    pub enabled: bool,
    /// The port echoes its input to its own output (supervisor
    /// loopback, for link testing).
    pub loopback: bool,
}

impl PortStatus {
    /// The power-on state: idle, unlocked, ready, enabled.
    pub fn idle() -> PortStatus {
        PortStatus { driven_by: None, locked_by: None, ready: true, enabled: true, loopback: false }
    }

    /// Packs the boolean summary into one wire byte for a status reply:
    /// bit 0 = connected, bit 1 = locked, bit 2 = ready, bit 3 =
    /// enabled, bit 4 = loopback.
    pub fn pack(&self) -> u8 {
        (self.driven_by.is_some() as u8)
            | (self.locked_by.is_some() as u8) << 1
            | (self.ready as u8) << 2
            | (self.enabled as u8) << 3
            | (self.loopback as u8) << 4
    }

    /// Unpacks a wire byte produced by [`pack`](PortStatus::pack).
    /// Port identities of the driver/locker do not travel in the byte,
    /// so they come back as anonymous placeholders (`PortId::new(0)`).
    pub fn unpack(bits: u8) -> PortStatus {
        PortStatus {
            driven_by: (bits & 1 != 0).then(|| PortId::new(0)),
            locked_by: (bits & 2 != 0).then(|| PortId::new(0)),
            ready: bits & 4 != 0,
            enabled: bits & 8 != 0,
            loopback: bits & 16 != 0,
        }
    }
}

impl fmt::Display for PortStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "driven_by={} locked_by={} ready={} enabled={}{}",
            self.driven_by.map_or("-".to_string(), |p| p.to_string()),
            self.locked_by.map_or("-".to_string(), |p| p.to_string()),
            self.ready as u8,
            self.enabled as u8,
            if self.loopback { " loopback" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_ready_and_enabled() {
        let s = PortStatus::idle();
        assert!(s.ready && s.enabled && !s.loopback);
        assert!(s.driven_by.is_none() && s.locked_by.is_none());
    }

    #[test]
    fn pack_unpack_flags() {
        let mut s = PortStatus::idle();
        s.driven_by = Some(PortId::new(4));
        s.locked_by = Some(PortId::new(4));
        s.loopback = true;
        let bits = s.pack();
        let back = PortStatus::unpack(bits);
        assert!(back.driven_by.is_some());
        assert!(back.locked_by.is_some());
        assert!(back.ready && back.enabled && back.loopback);
    }

    #[test]
    fn pack_is_injective_over_flag_combinations() {
        let mut seen = std::collections::HashSet::new();
        for connected in [false, true] {
            for locked in [false, true] {
                for ready in [false, true] {
                    for enabled in [false, true] {
                        for loopback in [false, true] {
                            let s = PortStatus {
                                driven_by: connected.then(|| PortId::new(1)),
                                locked_by: locked.then(|| PortId::new(1)),
                                ready,
                                enabled,
                                loopback,
                            };
                            assert!(seen.insert(s.pack()), "collision for {s:?}");
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn display_shows_driver() {
        let mut s = PortStatus::idle();
        s.driven_by = Some(PortId::new(7));
        assert!(s.to_string().contains("driven_by=P7"));
    }
}
