//! A free-list of payload buffers for the zero-allocation event path.
//!
//! Every transport action that puts bytes on the wire needs a `Vec<u8>`
//! for the encoded header + payload, and every delivery hands the bytes
//! to the receiving CAB. Allocating that `Vec` per packet dominates the
//! simulator's hot path once the scheduler itself is cheap, so the
//! world keeps a [`BufPool`]: encoded buffers are acquired from it,
//! travel through the fabric inside an `Arc` (so multicast fan-out and
//! delivery share, never copy), and are [`reclaim`](BufPool::reclaim)ed
//! once the last reference drops.
//!
//! The pool is deliberately simple — a LIFO stack of emptied `Vec`s —
//! because the simulation is single-threaded per world and buffer
//! lifetimes are short (a packet crosses the fabric in microseconds of
//! simulated time, a handful of events of real work).

use std::sync::Arc;

/// Statistics for one [`BufPool`], exposed for reports and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from the free list.
    pub hits: u64,
    /// Acquisitions that had to allocate.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub reclaims: u64,
    /// Reclaim attempts dropped because the buffer was still shared or
    /// the free list was full.
    pub dropped: u64,
}

impl PoolStats {
    /// Accumulates `other` into `self` (for summing per-CAB pools).
    pub fn merge(&mut self, other: PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.reclaims += other.reclaims;
        self.dropped += other.dropped;
    }
}

/// A LIFO free-list of byte buffers.
pub struct BufPool {
    free: Vec<Vec<u8>>,
    /// Maximum buffers kept; excess reclaims are dropped to bound
    /// memory under bursty traffic.
    capacity: usize,
    stats: PoolStats,
}

impl BufPool {
    /// A pool retaining at most `capacity` idle buffers.
    pub fn new(capacity: usize) -> BufPool {
        BufPool {
            free: Vec::with_capacity(capacity.min(1024)),
            capacity,
            stats: PoolStats::default(),
        }
    }

    /// Takes an empty buffer from the pool, or allocates one.
    pub fn acquire(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                self.stats.hits += 1;
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns an owned buffer to the pool (cleared, capacity kept).
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.capacity {
            buf.clear();
            self.free.push(buf);
            self.stats.reclaims += 1;
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Attempts to reclaim a shared buffer: succeeds only if this was
    /// the last reference (i.e. the packet has fully left the fabric).
    pub fn reclaim(&mut self, buf: Arc<Vec<u8>>) {
        match Arc::try_unwrap(buf) {
            Ok(v) => self.recycle(v),
            Err(_) => self.stats.dropped += 1,
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

impl Default for BufPool {
    /// A pool sized for a busy world: enough idle buffers to cover the
    /// packets in flight across a full mesh without dropping reclaims.
    fn default() -> BufPool {
        BufPool::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_reclaimed_buffers() {
        let mut pool = BufPool::new(8);
        let mut buf = pool.acquire();
        assert_eq!(pool.stats().misses, 1);
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        pool.recycle(buf);
        let again = pool.acquire();
        assert_eq!(pool.stats().hits, 1);
        assert!(again.is_empty(), "recycled buffers come back cleared");
        assert_eq!(again.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn reclaim_refuses_shared_buffers() {
        let mut pool = BufPool::new(8);
        let a = Arc::new(vec![1u8; 16]);
        let b = Arc::clone(&a);
        pool.reclaim(a);
        assert_eq!(pool.idle(), 0, "still-shared buffer must not be pooled");
        assert_eq!(pool.stats().dropped, 1);
        drop(b);
    }

    #[test]
    fn reclaim_takes_last_reference() {
        let mut pool = BufPool::new(8);
        let a = Arc::new(vec![1u8; 16]);
        let b = Arc::clone(&a);
        drop(a);
        pool.reclaim(b);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.stats().reclaims, 1);
    }

    #[test]
    fn capacity_bounds_idle_buffers() {
        let mut pool = BufPool::new(2);
        for _ in 0..4 {
            pool.recycle(Vec::with_capacity(64));
        }
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().dropped, 2);
    }
}
