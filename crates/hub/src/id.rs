//! Identifiers for HUBs and their I/O ports.
//!
//! Commands on the wire are three bytes — `command, HUB ID, param` —
//! so both identifiers are a single byte, exactly as in the prototype.

use core::fmt;

/// Identifies one HUB in a multi-HUB Nectar-net.
///
/// # Examples
///
/// ```
/// use nectar_hub::id::HubId;
/// let h = HubId::new(2);
/// assert_eq!(h.raw(), 2);
/// assert_eq!(h.to_string(), "HUB2");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HubId(u8);

impl HubId {
    /// Creates a HUB id from its wire byte.
    pub const fn new(raw: u8) -> HubId {
        HubId(raw)
    }

    /// The wire byte.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// The index form, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u8> for HubId {
    fn from(raw: u8) -> HubId {
        HubId(raw)
    }
}

impl fmt::Display for HubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HUB{}", self.0)
    }
}

/// Identifies one I/O port on a HUB (the prototype backplane has 16).
///
/// A "port" is a full-duplex pair: an input queue fed by the incoming
/// fiber and an output register driving the outgoing fiber.
///
/// # Examples
///
/// ```
/// use nectar_hub::id::PortId;
/// let p = PortId::new(8);
/// assert_eq!(p.to_string(), "P8");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(u8);

impl PortId {
    /// Creates a port id from its wire byte.
    pub const fn new(raw: u8) -> PortId {
        PortId(raw)
    }

    /// The wire byte.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// The index form, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u8> for PortId {
    fn from(raw: u8) -> PortId {
        PortId(raw)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        for raw in 0..=255u8 {
            assert_eq!(HubId::new(raw).raw(), raw);
            assert_eq!(PortId::new(raw).raw(), raw);
            assert_eq!(PortId::from(raw).index(), raw as usize);
        }
    }

    #[test]
    fn display_matches_paper_figures() {
        // Figure 7 labels ports P1..P8 and hubs HUB1..HUB4.
        assert_eq!(HubId::new(1).to_string(), "HUB1");
        assert_eq!(PortId::new(4).to_string(), "P4");
    }

    #[test]
    fn ordering_is_by_raw_value() {
        assert!(PortId::new(3) < PortId::new(7));
        assert!(HubId::new(0) < HubId::new(1));
    }
}
