//! A 10 Mbit/s CSMA/CD Ethernet segment.
//!
//! The paper's baseline: "current local area networks" (§1, §3.1).
//! This is an event-driven shared-medium model with the classic
//! contention behaviour: stations defer while the medium is busy; when
//! it goes idle, all backlogged stations transmit after the inter-frame
//! gap; simultaneous attempts collide and back off binary-exponentially
//! in 51.2 µs slots. Delivered throughput therefore *degrades* under
//! offered load — the effect the Nectar crossbar eliminates (E15).

use nectar_sim::engine::Engine;
use nectar_sim::rng::Rng;
use nectar_sim::time::{Dur, Time};
use nectar_sim::units::Bandwidth;
use std::collections::VecDeque;

/// Ethernet parameters (IEEE 802.3 10BASE5 defaults).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthernetConfig {
    /// Medium rate: 10 Mbit/s.
    pub bandwidth: Bandwidth,
    /// Contention slot: 51.2 µs.
    pub slot: Dur,
    /// Inter-frame gap: 9.6 µs.
    pub inter_frame_gap: Dur,
    /// Jam time after a collision: 3.2 µs.
    pub jam: Dur,
    /// Maximum backoff exponent (2^10 slots).
    pub max_backoff_exp: u32,
    /// Attempts before a frame is dropped (16 in 802.3).
    pub max_attempts: u32,
    /// Frame overhead: preamble + headers + CRC + min-size padding
    /// floor (bytes).
    pub frame_overhead: usize,
    /// Largest payload per frame.
    pub max_payload: usize,
}

impl Default for EthernetConfig {
    fn default() -> EthernetConfig {
        EthernetConfig {
            bandwidth: Bandwidth::from_mbit_per_sec(10),
            slot: Dur::from_nanos(51_200),
            inter_frame_gap: Dur::from_nanos(9_600),
            jam: Dur::from_nanos(3_200),
            max_backoff_exp: 10,
            max_attempts: 16,
            frame_overhead: 26,
            max_payload: 1500,
        }
    }
}

/// One frame to transmit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Sending station.
    pub src: usize,
    /// Receiving station.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: usize,
    /// Tag for the caller's bookkeeping.
    pub tag: u64,
}

/// A completed delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivered {
    /// The frame.
    pub frame: Frame,
    /// When its last bit crossed the wire.
    pub at: Time,
    /// When it was queued at the sender.
    pub queued_at: Time,
}

#[derive(Clone, Debug)]
struct Station {
    queue: VecDeque<(Frame, Time)>,
    attempts: u32,
    /// Station refuses to contend before this time (backoff).
    defer_until: Time,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Ev {
    /// The medium went idle; contenders may try.
    Contend,
    /// A successful transmission finished.
    TxDone,
    /// A frame reaches its station's transmit queue (scheduled send).
    Arrive(Frame),
}

/// Event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EthernetStats {
    /// Frames delivered.
    pub delivered: u64,
    /// Collision events.
    pub collisions: u64,
    /// Frames dropped after 16 attempts.
    pub dropped: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
}

/// The shared segment with its stations.
#[derive(Debug)]
pub struct Ethernet {
    cfg: EthernetConfig,
    engine: Engine<Ev>,
    stations: Vec<Station>,
    /// The frame currently on the wire, if any.
    in_flight: Option<(usize, Frame, Time)>,
    rng: Rng,
    stats: EthernetStats,
    /// Deliveries in completion order.
    pub deliveries: Vec<Delivered>,
}

impl Ethernet {
    /// A segment with `stations` stations.
    ///
    /// # Panics
    ///
    /// Panics if `stations` is zero.
    pub fn new(stations: usize, cfg: EthernetConfig, seed: u64) -> Ethernet {
        assert!(stations > 0, "a segment needs stations");
        Ethernet {
            cfg,
            engine: Engine::new(),
            stations: vec![
                Station { queue: VecDeque::new(), attempts: 0, defer_until: Time::ZERO };
                stations
            ],
            in_flight: None,
            rng: Rng::seed_from(seed),
            stats: EthernetStats::default(),
            deliveries: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EthernetConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> EthernetStats {
        self.stats
    }

    /// Number of stations on the segment.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// Time a frame of `bytes` payload occupies the wire.
    pub fn frame_time(&self, bytes: usize) -> Dur {
        self.cfg.bandwidth.transfer_time(bytes.max(46) + self.cfg.frame_overhead)
    }

    /// Queues a frame at `station` at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds the MTU (the caller fragments) or
    /// the station is out of range.
    pub fn enqueue(&mut self, frame: Frame) {
        assert!(frame.bytes <= self.cfg.max_payload, "fragment to the MTU first");
        let now = self.engine.now();
        let st = &mut self.stations[frame.src];
        st.queue.push_back((frame, now));
        // A newly backlogged station joins the next contention round.
        self.engine.schedule(Dur::ZERO, Ev::Contend);
    }

    /// Queues a frame at an absolute future time (e.g. after the
    /// sender's protocol stack has finished with it).
    ///
    /// # Panics
    ///
    /// Panics on an oversize payload, like [`enqueue`](Ethernet::enqueue).
    pub fn enqueue_at(&mut self, at: Time, frame: Frame) {
        assert!(frame.bytes <= self.cfg.max_payload, "fragment to the MTU first");
        self.engine.schedule_at(at.max(self.engine.now()), Ev::Arrive(frame));
    }

    fn contenders(&self, now: Time) -> Vec<usize> {
        self.stations
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.queue.is_empty() && s.defer_until <= now)
            .map(|(i, _)| i)
            .collect()
    }

    fn step(&mut self, ev: Ev) {
        let now = self.engine.now();
        match ev {
            Ev::Contend => {
                if self.in_flight.is_some() {
                    return; // medium busy; TxDone re-arms contention
                }
                let ready = self.contenders(now);
                match ready.len() {
                    0 => {
                        // Everyone is backing off: poke again at the
                        // earliest defer expiry.
                        if let Some(next) = self
                            .stations
                            .iter()
                            .filter(|s| !s.queue.is_empty())
                            .map(|s| s.defer_until)
                            .min()
                        {
                            self.engine.schedule_at(next.max(now), Ev::Contend);
                        }
                    }
                    1 => {
                        let s = ready[0];
                        let (frame, queued_at) =
                            self.stations[s].queue.pop_front().expect("backlogged");
                        self.stations[s].attempts = 0;
                        let dur = self.cfg.inter_frame_gap + self.frame_time(frame.bytes);
                        self.in_flight = Some((s, frame, queued_at));
                        self.engine.schedule(dur, Ev::TxDone);
                    }
                    _ => {
                        // Collision: everyone jams and backs off.
                        self.stats.collisions += 1;
                        for s in ready {
                            let st = &mut self.stations[s];
                            st.attempts += 1;
                            if st.attempts >= self.cfg.max_attempts {
                                st.queue.pop_front();
                                st.attempts = 0;
                                self.stats.dropped += 1;
                                continue;
                            }
                            let exp = st.attempts.min(self.cfg.max_backoff_exp);
                            let slots = self.rng.range(0..=(1u64 << exp) - 1);
                            st.defer_until = now + self.cfg.jam + self.cfg.slot * slots;
                        }
                        self.engine.schedule(self.cfg.jam, Ev::Contend);
                    }
                }
            }
            Ev::Arrive(frame) => {
                self.stations[frame.src].queue.push_back((frame, now));
                self.engine.schedule(Dur::ZERO, Ev::Contend);
            }
            Ev::TxDone => {
                if let Some((_, frame, queued_at)) = self.in_flight.take() {
                    self.stats.delivered += 1;
                    self.stats.bytes += frame.bytes as u64;
                    self.deliveries.push(Delivered { frame, at: now, queued_at });
                }
                self.engine.schedule(Dur::ZERO, Ev::Contend);
            }
        }
    }

    /// Runs until quiescent or `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(at) = self.engine.peek_time() {
            if at > deadline {
                break;
            }
            let ev = self.engine.step().expect("peeked");
            self.step(ev);
        }
        self.engine.advance_to(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(src: usize, dst: usize, bytes: usize, tag: u64) -> Frame {
        Frame { src, dst, bytes, tag }
    }

    #[test]
    fn single_frame_takes_wire_time() {
        let mut eth = Ethernet::new(2, EthernetConfig::default(), 1);
        eth.enqueue(frame(0, 1, 1000, 1));
        eth.run_until(Time::from_millis(10));
        assert_eq!(eth.deliveries.len(), 1);
        let d = &eth.deliveries[0];
        // 1026 bytes at 10 Mbit/s = 820.8 us + 9.6 us IFG.
        assert_eq!(d.at - d.queued_at, Dur::from_nanos(820_800 + 9_600));
    }

    #[test]
    fn contention_causes_collisions_but_delivers() {
        let mut eth = Ethernet::new(8, EthernetConfig::default(), 2);
        for s in 0..8 {
            eth.enqueue(frame(s, (s + 1) % 8, 500, s as u64));
        }
        eth.run_until(Time::from_millis(100));
        assert_eq!(eth.stats().delivered, 8, "everything eventually gets through");
        assert!(eth.stats().collisions > 0, "simultaneous arrivals must collide");
    }

    #[test]
    fn medium_serializes_frames() {
        let mut eth = Ethernet::new(4, EthernetConfig::default(), 3);
        for _ in 0..5 {
            eth.enqueue(frame(0, 1, 1500, 0));
        }
        eth.run_until(Time::from_millis(100));
        assert_eq!(eth.deliveries.len(), 5);
        for w in eth.deliveries.windows(2) {
            assert!(
                w[1].at - w[0].at >= eth.frame_time(1500),
                "frames cannot overlap on a shared medium"
            );
        }
    }

    #[test]
    fn throughput_cannot_exceed_wire_rate() {
        let mut eth = Ethernet::new(2, EthernetConfig::default(), 4);
        for _ in 0..100 {
            eth.enqueue(frame(0, 1, 1500, 0));
        }
        eth.run_until(Time::from_millis(1_000));
        let elapsed = eth.deliveries.last().unwrap().at;
        let bits = eth.stats().bytes * 8;
        let rate = bits as f64 / elapsed.as_secs_f64();
        assert!(rate < 10_000_000.0, "{rate} bit/s exceeds the medium");
        assert!(rate > 8_000_000.0, "a single sender should come close to line rate");
    }

    #[test]
    fn min_frame_padding_applies() {
        let eth = Ethernet::new(2, EthernetConfig::default(), 5);
        // A 1-byte payload still occupies a 46+26 byte frame.
        assert_eq!(eth.frame_time(1), eth.frame_time(46));
        assert!(eth.frame_time(47) > eth.frame_time(46));
    }

    #[test]
    fn frames_drop_after_sixteen_attempts() {
        // Force perpetual collisions: zero backoff range is impossible,
        // so shrink the limit instead and hammer the medium.
        let cfg = EthernetConfig { max_attempts: 2, max_backoff_exp: 0, ..Default::default() };
        let mut eth = Ethernet::new(4, cfg, 9);
        for s in 0..4 {
            for _ in 0..4 {
                eth.enqueue(frame(s, (s + 1) % 4, 100, 0));
            }
        }
        eth.run_until(Time::from_millis(200));
        let st = eth.stats();
        assert_eq!(st.delivered + st.dropped, 16, "every frame resolves one way");
        assert!(st.dropped > 0, "a 2-attempt limit under load must drop");
    }

    #[test]
    #[should_panic]
    fn oversize_frame_rejected() {
        let mut eth = Ethernet::new(2, EthernetConfig::default(), 6);
        eth.enqueue(frame(0, 1, 2000, 0));
    }
}
