//! The 1988-era UNIX protocol-stack cost model.
//!
//! "Typical profiles of networking implementations on UNIX show that
//! the time spent in the software dominates the time spent on the wire"
//! (§3.1, citing Cabrera et al. and Chesson). This module charges that
//! software: per-packet system calls, interrupts, context switches,
//! buffer copies, and *software* checksums (no CAB hardware here) —
//! the baseline the Nectar claims are measured against (E08).

use nectar_sim::time::Dur;
use nectar_sim::units::Bandwidth;

/// Per-operation costs of the node-resident stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnixStackConfig {
    /// One system call.
    pub syscall: Dur,
    /// One device interrupt.
    pub interrupt: Dur,
    /// One process context switch (wakeup of the blocked receiver).
    pub context_switch: Dur,
    /// Per-packet protocol processing (headers, timers, mbuf chains).
    pub protocol_per_packet: Dur,
    /// User/kernel copy bandwidth.
    pub copy_bw: Bandwidth,
    /// Software checksum bandwidth.
    pub checksum_bw: Bandwidth,
}

impl UnixStackConfig {
    /// Costs calibrated to the measurements the paper cites: a few
    /// hundred microseconds of fixed cost per packet per side, plus
    /// copy and checksum passes over the payload.
    pub fn bsd_1988() -> UnixStackConfig {
        UnixStackConfig {
            syscall: Dur::from_micros(25),
            interrupt: Dur::from_micros(30),
            context_switch: Dur::from_micros(100),
            protocol_per_packet: Dur::from_micros(170),
            copy_bw: Bandwidth::from_mbyte_per_sec(8),
            checksum_bw: Bandwidth::from_mbyte_per_sec(6),
        }
    }

    /// Software time to *send* one packet of `bytes` payload: syscall,
    /// copy into kernel, checksum, protocol processing.
    pub fn send_packet(&self, bytes: usize) -> Dur {
        self.syscall
            + self.copy_bw.transfer_time(bytes)
            + self.checksum_bw.transfer_time(bytes)
            + self.protocol_per_packet
    }

    /// Software time to *receive* one packet: interrupt, checksum,
    /// protocol processing, copy to user, wakeup.
    pub fn recv_packet(&self, bytes: usize) -> Dur {
        self.interrupt
            + self.checksum_bw.transfer_time(bytes)
            + self.protocol_per_packet
            + self.copy_bw.transfer_time(bytes)
            + self.syscall
            + self.context_switch
    }
}

impl Default for UnixStackConfig {
    fn default() -> UnixStackConfig {
        UnixStackConfig::bsd_1988()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_dominates_wire_time_for_small_packets() {
        // §3.1's central observation: a 64 B packet occupies a 10 Mbit/s
        // wire for ~70 us but costs far more in software.
        let s = UnixStackConfig::bsd_1988();
        let software = s.send_packet(64) + s.recv_packet(64);
        let wire = Bandwidth::from_mbit_per_sec(10).transfer_time(64 + 26 + 18);
        assert!(
            software.nanos() > 5 * wire.nanos(),
            "software {software} should dwarf wire {wire}"
        );
    }

    #[test]
    fn costs_scale_with_payload() {
        let s = UnixStackConfig::bsd_1988();
        assert!(s.send_packet(1500) > s.send_packet(64));
        // 1500 B adds two passes (copy at 8 MB/s + checksum at 6 MB/s).
        let delta = s.send_packet(1500) - s.send_packet(0);
        assert!(delta > Dur::from_micros(400));
    }

    #[test]
    fn fixed_costs_match_cited_measurements() {
        // End-to-end software cost for a small packet lands near a
        // millisecond, matching the cited late-80s measurements.
        let s = UnixStackConfig::bsd_1988();
        let total = (s.send_packet(64) + s.recv_packet(64)).as_micros_f64();
        assert!((500.0..1500.0).contains(&total), "got {total} us");
    }
}
