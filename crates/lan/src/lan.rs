//! The assembled LAN baseline: Ethernet segment + UNIX stacks.
//!
//! This is the "current LANs" system the paper's §3.1 claims are
//! measured against: a 10 Mbit/s shared medium where every packet costs
//! node software on both ends. The probes mirror `nectar-core`'s so
//! experiment E08 can print one table from both systems.

use crate::ethernet::{Ethernet, EthernetConfig, Frame};
use crate::stack::UnixStackConfig;
use nectar_sim::rng::Rng;
use nectar_sim::time::Dur;
use nectar_sim::units::Bandwidth;

/// Configuration of the baseline LAN.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LanConfig {
    /// The shared medium.
    pub ethernet: EthernetConfig,
    /// The node-resident protocol stack.
    pub stack: UnixStackConfig,
    /// RNG seed for backoff and workload generation.
    pub seed: u64,
}

impl Default for LanConfig {
    fn default() -> LanConfig {
        LanConfig {
            ethernet: EthernetConfig::default(),
            stack: UnixStackConfig::bsd_1988(),
            seed: 1989,
        }
    }
}

/// Result of the offered-load experiment (E15).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadReport {
    /// Aggregate load the stations tried to put on the wire.
    pub offered: Bandwidth,
    /// Aggregate payload actually delivered.
    pub delivered: Bandwidth,
    /// Mean queue-to-delivery delay per frame.
    pub mean_delay: Dur,
    /// Collision events during the run.
    pub collisions: u64,
}

/// A LAN of workstations for side-by-side comparison with Nectar.
pub struct LanSystem {
    cfg: LanConfig,
    eth: Ethernet,
}

impl LanSystem {
    /// A segment with `stations` workstations.
    pub fn new(stations: usize, cfg: LanConfig) -> LanSystem {
        let eth = Ethernet::new(stations, cfg.ethernet.clone(), cfg.seed);
        LanSystem { cfg, eth }
    }

    /// The underlying segment.
    pub fn ethernet(&self) -> &Ethernet {
        &self.eth
    }

    fn fragments(&self, bytes: usize) -> Vec<usize> {
        let mtu = self.cfg.ethernet.max_payload;
        if bytes == 0 {
            return vec![0];
        }
        let mut out = Vec::new();
        let mut left = bytes;
        while left > 0 {
            let take = left.min(mtu);
            out.push(take);
            left -= take;
        }
        out
    }

    /// One-way process-to-process latency for a `bytes` message on an
    /// otherwise idle segment: sender stack per packet (serialized on
    /// the sending CPU), the wire, then receiver stack per packet.
    pub fn measure_latency(&mut self, src: usize, dst: usize, bytes: usize) -> Dur {
        let t0 = self.eth.now();
        let frags = self.fragments(bytes);
        let before = self.eth.deliveries.len();
        // The sending CPU pushes fragments out one stack-traversal at a
        // time.
        let mut cpu_free = t0;
        for (i, &len) in frags.iter().enumerate() {
            cpu_free += self.cfg.stack.send_packet(len);
            self.eth.enqueue_at(cpu_free, Frame { src, dst, bytes: len, tag: i as u64 });
        }
        self.eth.run_until(t0 + Dur::from_secs(10));
        let delivered = &self.eth.deliveries[before..];
        assert_eq!(delivered.len(), frags.len(), "idle segment loses nothing");
        // The receiving CPU processes arrivals serially.
        let mut rx_free = t0;
        for d in delivered {
            rx_free = rx_free.max(d.at) + self.cfg.stack.recv_packet(d.frame.bytes);
        }
        rx_free.saturating_since(t0)
    }

    /// Bulk throughput for `total` bytes between one pair of stations.
    pub fn measure_throughput(&mut self, src: usize, dst: usize, total: usize) -> Bandwidth {
        let elapsed = self.measure_latency(src, dst, total);
        let bps = (total as u128 * 8 * 1_000_000_000 / elapsed.nanos().max(1) as u128) as u64;
        Bandwidth::from_bits_per_sec(bps.max(1))
    }

    /// Drives every station with Poisson frame arrivals so the segment
    /// carries `offered` aggregate load for `duration`, then reports
    /// what was actually delivered (the E15 contention curve).
    pub fn offered_load_run(
        &mut self,
        offered: Bandwidth,
        frame_bytes: usize,
        duration: Dur,
    ) -> LoadReport {
        let stations = {
            // Count comes from construction; infer from a probe frame.
            // (Ethernet has no accessor; track via config instead.)
            self.station_count()
        };
        let mut rng = Rng::seed_from(self.cfg.seed ^ 0x9E37);
        let per_station_bps = offered.bits_per_sec() as f64 / stations as f64;
        let frame_bits = (frame_bytes * 8) as f64;
        let mean_gap_ns = frame_bits / per_station_bps * 1e9;
        let t0 = self.eth.now();
        let before_frames = self.eth.deliveries.len();
        let before_collisions = self.eth.stats().collisions;
        for s in 0..stations {
            let mut t = t0;
            loop {
                t += Dur::from_nanos(rng.exp(mean_gap_ns).max(1.0) as u64);
                if t >= t0 + duration {
                    break;
                }
                let dst = (s + 1 + rng.range(0..=(stations as u64 - 2)) as usize) % stations;
                self.eth.enqueue_at(t, Frame { src: s, dst, bytes: frame_bytes, tag: 0 });
            }
        }
        self.eth.run_until(t0 + duration);
        let delivered = &self.eth.deliveries[before_frames..];
        let bytes: u64 = delivered.iter().map(|d| d.frame.bytes as u64).sum();
        let delay_sum: Dur = delivered.iter().map(|d| d.at.saturating_since(d.queued_at)).sum();
        let mean_delay =
            if delivered.is_empty() { Dur::ZERO } else { delay_sum / delivered.len() as u64 };
        let delivered_bps =
            (bytes as u128 * 8 * 1_000_000_000 / duration.nanos().max(1) as u128) as u64;
        LoadReport {
            offered,
            delivered: Bandwidth::from_bits_per_sec(delivered_bps.max(1)),
            mean_delay,
            collisions: self.eth.stats().collisions - before_collisions,
        }
    }

    fn station_count(&self) -> usize {
        self.eth.station_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_is_around_a_millisecond() {
        // The 1988 baseline: ~1 ms process-to-process for a small
        // message — an order of magnitude above Nectar's 100 us goal.
        let mut lan = LanSystem::new(4, LanConfig::default());
        let lat = lan.measure_latency(0, 1, 64);
        let us = lat.as_micros_f64();
        assert!((500.0..3000.0).contains(&us), "got {us:.0} us");
    }

    #[test]
    fn bulk_throughput_is_capped_by_stack_and_wire() {
        let mut lan = LanSystem::new(2, LanConfig::default());
        let tp = lan.measure_throughput(0, 1, 256 * 1024);
        let mbit = tp.as_mbit_per_sec_f64();
        assert!(mbit < 10.0, "cannot beat the 10 Mbit/s wire: {mbit:.2}");
        assert!(mbit > 2.0, "bulk transfer should still move: {mbit:.2}");
    }

    #[test]
    fn delivered_throughput_degrades_past_saturation() {
        let mut light = LanSystem::new(16, LanConfig::default());
        let low =
            light.offered_load_run(Bandwidth::from_mbit_per_sec(2), 512, Dur::from_millis(500));
        let mut heavy = LanSystem::new(16, LanConfig::default());
        let high =
            heavy.offered_load_run(Bandwidth::from_mbit_per_sec(20), 512, Dur::from_millis(500));
        // Under light load nearly everything is delivered...
        assert!(
            low.delivered.bits_per_sec() as f64 >= 0.8 * low.offered.bits_per_sec() as f64,
            "light load: delivered {} of offered {}",
            low.delivered,
            low.offered
        );
        // ...past saturation the medium caps out below the wire rate
        // and collisions pile up.
        assert!(high.delivered.as_mbit_per_sec_f64() < 10.0);
        assert!(high.collisions > low.collisions);
        assert!(high.mean_delay > low.mean_delay);
    }

    #[test]
    fn fragments_respect_the_mtu() {
        let lan = LanSystem::new(2, LanConfig::default());
        let frags = lan.fragments(4000);
        assert_eq!(frags, vec![1500, 1500, 1000]);
        assert_eq!(lan.fragments(0), vec![0]);
    }
}
