//! # nectar-lan — the 1988 LAN baseline
//!
//! "The Nectar-net offers at least an order of magnitude improvement in
//! bandwidth and latency over current LANs" (paper §3.1). This crate is
//! the *current LAN* of that sentence: a 10 Mbit/s CSMA/CD Ethernet
//! segment ([`ethernet`]) whose every packet is processed by a
//! node-resident UNIX protocol stack ([`stack`]), assembled into a
//! measurable system ([`lan`]) with the same probes as `nectar-core`.
//!
//! # Examples
//!
//! ```
//! use nectar_lan::lan::{LanConfig, LanSystem};
//!
//! let mut lan = LanSystem::new(4, LanConfig::default());
//! let latency = lan.measure_latency(0, 1, 64);
//! // A small message costs on the order of a millisecond — an order
//! // of magnitude above Nectar's 100 us node-to-node goal.
//! assert!(latency.as_micros_f64() > 500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ethernet;
pub mod lan;
pub mod stack;

/// The most frequently used names, for glob import.
pub mod prelude {
    pub use crate::ethernet::{Delivered, Ethernet, EthernetConfig, EthernetStats, Frame};
    pub use crate::lan::{LanConfig, LanSystem, LoadReport};
    pub use crate::stack::UnixStackConfig;
}
