//! Internet protocols over Nectar (§6.2.2 future work, implemented).
//!
//! "The current transport protocols are simple and Nectar-specific. We
//! plan to experiment with the corresponding Internet protocols (IP,
//! TCP, and VMTP) over Nectar in the coming year" (§6.2.2). This
//! module is that experiment: an RFC-791-shaped IPv4 header with
//! header checksum, an ARP-like address map from IP addresses to CABs,
//! and encapsulation/decapsulation so IP datagrams ride Nectar
//! transport packets. TCP-like reliable delivery maps onto the
//! byte-stream transport; VMTP-like transactions map onto
//! request-response — the mappings the paper anticipated.

use core::fmt;
use nectar_cab::board::CabId;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Size of the fixed IPv4 header this module emits (no options).
pub const IPV4_HEADER_BYTES: usize = 20;

/// IP protocol numbers used over Nectar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// UDP-like: rides the Nectar datagram transport.
    Udp,
    /// TCP-like: rides the Nectar byte-stream transport.
    Tcp,
    /// VMTP (RFC 1045): rides the request-response transport.
    Vmtp,
}

impl IpProto {
    fn number(self) -> u8 {
        match self {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Vmtp => 81,
        }
    }

    fn from_number(n: u8) -> Option<IpProto> {
        Some(match n {
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            81 => IpProto::Vmtp,
            _ => return None,
        })
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IpProto::Udp => "udp",
            IpProto::Tcp => "tcp",
            IpProto::Vmtp => "vmtp",
        };
        f.write_str(s)
    }
}

/// An IPv4 datagram header (RFC 791, no options).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IpHeader {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub proto: IpProto,
    /// Time to live.
    pub ttl: u8,
    /// Identification (for reassembly at the IP level; Nectar's own
    /// fragmentation keeps this mostly decorative).
    pub ident: u16,
    /// Payload length in bytes.
    pub payload_len: u16,
}

/// Why an IP datagram failed to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpError {
    /// Fewer than 20 bytes.
    Truncated,
    /// Version field is not 4.
    BadVersion(u8),
    /// Header checksum mismatch.
    Checksum,
    /// Unknown protocol number.
    UnknownProto(u8),
    /// Total length disagrees with the buffer.
    BadLength,
    /// TTL expired in transit.
    TtlExpired,
    /// No route for the destination address.
    NoRoute(Ipv4Addr),
}

impl fmt::Display for IpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpError::Truncated => f.write_str("truncated IP header"),
            IpError::BadVersion(v) => write!(f, "IP version {v} is not 4"),
            IpError::Checksum => f.write_str("IP header checksum mismatch"),
            IpError::UnknownProto(p) => write!(f, "unknown IP protocol {p}"),
            IpError::BadLength => f.write_str("IP total length disagrees with buffer"),
            IpError::TtlExpired => f.write_str("TTL expired"),
            IpError::NoRoute(a) => write!(f, "no Nectar route for {a}"),
        }
    }
}

impl std::error::Error for IpError {}

/// The Internet header checksum (RFC 1071 ones'-complement sum).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

impl IpHeader {
    /// Encodes the header and payload into one buffer, computing the
    /// header checksum.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len()` disagrees with `self.payload_len`.
    pub fn encode_with(&self, payload: &[u8]) -> Vec<u8> {
        assert_eq!(payload.len(), self.payload_len as usize);
        let total = (IPV4_HEADER_BYTES + payload.len()) as u16;
        let mut buf = Vec::with_capacity(total as usize);
        buf.push(0x45); // version 4, IHL 5
        buf.push(0); // DSCP/ECN
        buf.extend_from_slice(&total.to_be_bytes());
        buf.extend_from_slice(&self.ident.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // flags/fragment offset
        buf.push(self.ttl);
        buf.push(self.proto.number());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.src.octets());
        buf.extend_from_slice(&self.dst.octets());
        let sum = internet_checksum(&buf[..IPV4_HEADER_BYTES]);
        buf[10..12].copy_from_slice(&sum.to_be_bytes());
        buf.extend_from_slice(payload);
        buf
    }

    /// Decodes a buffer into header and payload, verifying version,
    /// length, and header checksum.
    ///
    /// # Errors
    ///
    /// See [`IpError`].
    pub fn decode(buf: &[u8]) -> Result<(IpHeader, &[u8]), IpError> {
        if buf.len() < IPV4_HEADER_BYTES {
            return Err(IpError::Truncated);
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(IpError::BadVersion(version));
        }
        if internet_checksum(&buf[..IPV4_HEADER_BYTES]) != 0 {
            return Err(IpError::Checksum);
        }
        let total = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total != buf.len() {
            return Err(IpError::BadLength);
        }
        let proto = IpProto::from_number(buf[9]).ok_or(IpError::UnknownProto(buf[9]))?;
        let header = IpHeader {
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            proto,
            ttl: buf[8],
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            payload_len: (total - IPV4_HEADER_BYTES) as u16,
        };
        Ok((header, &buf[IPV4_HEADER_BYTES..]))
    }
}

impl fmt::Display for IpHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -> {} ttl={} ({} B)",
            self.proto, self.src, self.dst, self.ttl, self.payload_len
        )
    }
}

/// The ARP-analogue: maps IP addresses onto CABs so the Nectar driver
/// knows which fiber to put a datagram on. ("A Berkeley UNIX network
/// driver for Nectar ... Nectar is used as a 'dumb' network", §6.2.3.)
#[derive(Clone, Debug, Default)]
pub struct AddressMap {
    entries: HashMap<Ipv4Addr, CabId>,
}

impl AddressMap {
    /// An empty map.
    pub fn new() -> AddressMap {
        AddressMap::default()
    }

    /// Binds an address to a CAB (latest binding wins).
    pub fn bind(&mut self, addr: Ipv4Addr, cab: CabId) {
        self.entries.insert(addr, cab);
    }

    /// Resolves an address.
    ///
    /// # Errors
    ///
    /// [`IpError::NoRoute`] for unbound addresses.
    pub fn resolve(&self, addr: Ipv4Addr) -> Result<CabId, IpError> {
        self.entries.get(&addr).copied().ok_or(IpError::NoRoute(addr))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no addresses are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One hop of IP forwarding at a Nectar driver: decrement TTL and
/// re-encode (checksum refreshed). Returns the updated datagram.
///
/// # Errors
///
/// [`IpError::TtlExpired`] when the TTL hits zero, plus any decode
/// error.
pub fn forward(buf: &[u8]) -> Result<Vec<u8>, IpError> {
    let (mut header, payload) = IpHeader::decode(buf)?;
    if header.ttl <= 1 {
        return Err(IpError::TtlExpired);
    }
    header.ttl -= 1;
    Ok(header.encode_with(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload: &[u8]) -> IpHeader {
        IpHeader {
            src: Ipv4Addr::new(128, 2, 254, 1),
            dst: Ipv4Addr::new(128, 2, 254, 36),
            proto: IpProto::Udp,
            ttl: 30,
            ident: 0xBEEF,
            payload_len: payload.len() as u16,
        }
    }

    #[test]
    fn roundtrip_all_protocols() {
        let payload = b"ip over nectar";
        for proto in [IpProto::Udp, IpProto::Tcp, IpProto::Vmtp] {
            let h = IpHeader { proto, ..sample(payload) };
            let wire = h.encode_with(payload);
            let (back, body) = IpHeader::decode(&wire).unwrap();
            assert_eq!(back, h);
            assert_eq!(body, payload);
        }
    }

    #[test]
    fn rfc1071_checksum_vector() {
        // Classic example: checksum of this sequence is 0xDD F2 before
        // complement -> stored 0x220D.
        let data = [0x00u8, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7];
        assert_eq!(internet_checksum(&data), !0xDDF2u16);
    }

    #[test]
    fn header_checksum_self_verifies() {
        let wire = sample(b"x").encode_with(b"x");
        assert_eq!(internet_checksum(&wire[..IPV4_HEADER_BYTES]), 0);
    }

    #[test]
    fn corruption_detected() {
        let wire = sample(b"abc").encode_with(b"abc");
        for idx in 0..IPV4_HEADER_BYTES {
            let mut bad = wire.clone();
            bad[idx] ^= 0x04;
            assert!(IpHeader::decode(&bad).is_err(), "byte {idx}");
        }
    }

    #[test]
    fn length_mismatch_detected() {
        let wire = sample(b"abcd").encode_with(b"abcd");
        assert_eq!(IpHeader::decode(&wire[..wire.len() - 1]), Err(IpError::BadLength));
        assert_eq!(IpHeader::decode(&wire[..10]), Err(IpError::Truncated));
    }

    #[test]
    fn unknown_protocol_rejected() {
        let mut wire = sample(b"").encode_with(b"");
        wire[9] = 99;
        // Refresh the checksum so only the protocol is wrong.
        wire[10] = 0;
        wire[11] = 0;
        let sum = internet_checksum(&wire[..IPV4_HEADER_BYTES]);
        wire[10..12].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(IpHeader::decode(&wire), Err(IpError::UnknownProto(99)));
    }

    #[test]
    fn forwarding_decrements_ttl_and_refreshes_checksum() {
        let wire = sample(b"hop").encode_with(b"hop");
        let next = forward(&wire).unwrap();
        let (h, body) = IpHeader::decode(&next).unwrap();
        assert_eq!(h.ttl, 29);
        assert_eq!(body, b"hop");
        // TTL runs out eventually.
        let mut buf = wire;
        let mut hops = 0;
        loop {
            match forward(&buf) {
                Ok(next) => {
                    buf = next;
                    hops += 1;
                }
                Err(IpError::TtlExpired) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(hops, 29);
    }

    #[test]
    fn address_map_resolves() {
        let mut arp = AddressMap::new();
        assert!(arp.is_empty());
        let a = Ipv4Addr::new(128, 2, 254, 1);
        arp.bind(a, CabId::new(3));
        assert_eq!(arp.resolve(a), Ok(CabId::new(3)));
        let b = Ipv4Addr::new(128, 2, 254, 99);
        assert_eq!(arp.resolve(b), Err(IpError::NoRoute(b)));
        assert_eq!(arp.len(), 1);
    }
}
