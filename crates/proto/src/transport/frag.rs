//! Message fragmentation and reassembly.
//!
//! "This involves breaking messages into packets, reassembling
//! messages, ..." (§6.2.2). Fragments are sized so a whole packet
//! (header + payload + framing) fits the 1 KB HUB input queue.

use std::sync::Arc;

/// Splits `data` into fragment payloads of at most `max_payload` bytes.
///
/// A zero-length message yields one empty fragment, so every message
/// occupies at least one packet on the wire.
///
/// # Panics
///
/// Panics if `max_payload` is zero.
///
/// # Examples
///
/// ```
/// use nectar_proto::transport::frag::fragment;
/// let frags = fragment(&[0u8; 2500], 990);
/// assert_eq!(frags.len(), 3);
/// assert_eq!(frags[0].len(), 990);
/// assert_eq!(frags[2].len(), 520);
/// ```
pub fn fragment(data: &[u8], max_payload: usize) -> Vec<Arc<[u8]>> {
    assert!(max_payload > 0, "fragment payload size must be positive");
    if data.is_empty() {
        return vec![Arc::from(Vec::new())];
    }
    data.chunks(max_payload).map(Arc::from).collect()
}

/// Number of fragments [`fragment`] would produce.
pub fn fragment_count(len: usize, max_payload: usize) -> usize {
    if len == 0 {
        1
    } else {
        len.div_ceil(max_payload)
    }
}

/// In-order reassembly of one message at a time (the byte-stream
/// transport delivers fragments in order, so a single accumulator
/// suffices; out-of-order arrival is a protocol error surfaced to the
/// caller).
#[derive(Clone, Debug, Default)]
pub struct Reassembler {
    current: Option<InProgress>,
}

#[derive(Clone, Debug)]
struct InProgress {
    msg_id: u32,
    frag_count: u16,
    next_index: u16,
    buf: Vec<u8>,
}

/// Outcome of feeding one fragment to the [`Reassembler`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReassemblyOutcome {
    /// Fragment accepted; the message is not complete yet.
    Incomplete,
    /// The message is complete; here is its payload.
    Complete(Vec<u8>),
    /// The fragment does not continue the in-progress message
    /// (unexpected id or index); the in-progress message is discarded.
    Mismatch,
}

impl Reassembler {
    /// An idle reassembler.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Feeds the next in-order fragment of message `msg_id`.
    pub fn push(
        &mut self,
        msg_id: u32,
        frag_index: u16,
        frag_count: u16,
        payload: &[u8],
    ) -> ReassemblyOutcome {
        if frag_count == 0 || frag_index >= frag_count {
            self.current = None;
            return ReassemblyOutcome::Mismatch;
        }
        match &mut self.current {
            None => {
                if frag_index != 0 {
                    return ReassemblyOutcome::Mismatch;
                }
                if frag_count == 1 {
                    return ReassemblyOutcome::Complete(payload.to_vec());
                }
                self.current =
                    Some(InProgress { msg_id, frag_count, next_index: 1, buf: payload.to_vec() });
                ReassemblyOutcome::Incomplete
            }
            Some(ip) => {
                if ip.msg_id != msg_id || ip.frag_count != frag_count || ip.next_index != frag_index
                {
                    self.current = None;
                    return ReassemblyOutcome::Mismatch;
                }
                ip.buf.extend_from_slice(payload);
                ip.next_index += 1;
                if ip.next_index == ip.frag_count {
                    let done = self.current.take().expect("in progress");
                    ReassemblyOutcome::Complete(done.buf)
                } else {
                    ReassemblyOutcome::Incomplete
                }
            }
        }
    }

    /// `true` if a message is partially assembled.
    pub fn in_progress(&self) -> bool {
        self.current.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::MAX_FRAGMENT_PAYLOAD;

    #[test]
    fn fragment_sizes() {
        let frags = fragment(&[1u8; 1000], 400);
        assert_eq!(frags.iter().map(|f| f.len()).collect::<Vec<_>>(), vec![400, 400, 200]);
        assert_eq!(fragment_count(1000, 400), 3);
    }

    #[test]
    fn empty_message_is_one_fragment() {
        let frags = fragment(&[], 400);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].is_empty());
        assert_eq!(fragment_count(0, 400), 1);
    }

    #[test]
    fn exact_multiple() {
        assert_eq!(fragment(&[0u8; 800], 400).len(), 2);
        assert_eq!(fragment_count(800, 400), 2);
    }

    #[test]
    fn default_max_fits_hub_queue() {
        let frags = fragment(&[0u8; 10_000], MAX_FRAGMENT_PAYLOAD);
        for f in &frags {
            assert!(f.len() <= MAX_FRAGMENT_PAYLOAD);
        }
    }

    #[test]
    fn reassembly_roundtrip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(3000).collect();
        let frags = fragment(&data, 990);
        let mut r = Reassembler::new();
        let n = frags.len() as u16;
        for (i, f) in frags.iter().enumerate() {
            let outcome = r.push(7, i as u16, n, f);
            if i + 1 == frags.len() {
                assert_eq!(outcome, ReassemblyOutcome::Complete(data.clone()));
            } else {
                assert_eq!(outcome, ReassemblyOutcome::Incomplete);
            }
        }
        assert!(!r.in_progress());
    }

    #[test]
    fn single_fragment_completes_immediately() {
        let mut r = Reassembler::new();
        assert_eq!(r.push(1, 0, 1, b"x"), ReassemblyOutcome::Complete(b"x".to_vec()));
    }

    #[test]
    fn mismatched_fragment_discards_progress() {
        let mut r = Reassembler::new();
        assert_eq!(r.push(1, 0, 3, b"a"), ReassemblyOutcome::Incomplete);
        // Wrong message id mid-stream.
        assert_eq!(r.push(2, 1, 3, b"b"), ReassemblyOutcome::Mismatch);
        assert!(!r.in_progress());
        // Starting over works.
        assert_eq!(r.push(2, 0, 2, b"a"), ReassemblyOutcome::Incomplete);
        assert!(matches!(r.push(2, 1, 2, b"b"), ReassemblyOutcome::Complete(_)));
    }

    #[test]
    fn non_initial_fragment_without_context_is_mismatch() {
        let mut r = Reassembler::new();
        assert_eq!(r.push(1, 1, 3, b"b"), ReassemblyOutcome::Mismatch);
    }

    #[test]
    fn degenerate_counts_rejected() {
        let mut r = Reassembler::new();
        assert_eq!(r.push(1, 0, 0, b""), ReassemblyOutcome::Mismatch);
        assert_eq!(r.push(1, 5, 3, b""), ReassemblyOutcome::Mismatch);
    }
}
