//! Transport protocols: message transfer between mailboxes on
//! different CABs (§6.2.2).
//!
//! Three protocols are implemented, exactly the paper's set:
//!
//! * [`datagram`] — "low overhead but does not guarantee packet
//!   delivery; a direct interface to the datalink layer".
//! * [`bytestream`] — "reliable communication using acknowledgments,
//!   retransmissions, and a sliding window for flow control".
//! * [`reqresp`] — "supports client-server interactions such as remote
//!   procedure calls".
//!
//! Every protocol is a pure state machine: entry points take the
//! current time and an event (a send request, an arriving packet, a
//! timer expiry) and append [`Action`]s for the caller to execute —
//! handing packets to the datalink, delivering messages to mailboxes,
//! and arming timers. The CAB model in `nectar-core` charges the CPU
//! costs and owns the event queue.

pub mod bytestream;
pub mod datagram;
pub mod frag;
pub mod reqresp;

use crate::header::Header;
use core::fmt;
use nectar_kernel::mailbox::Message;
use nectar_sim::time::Dur;
use std::sync::Arc;

/// Opaque handle tying a [`Action::SetTimer`] to a later
/// `on_timer` call. Protocols mint fresh tokens to invalidate stale
/// expirations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// Errors a transport reports to its user.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The message exceeds what the protocol can carry.
    TooLarge {
        /// Bytes requested.
        size: usize,
        /// The protocol's limit.
        limit: usize,
    },
    /// A request-response call exhausted its retries.
    Timeout {
        /// The transaction that timed out.
        msg_id: u32,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::TooLarge { size, limit } => {
                write!(f, "message of {size} bytes exceeds protocol limit {limit}")
            }
            TransportError::Timeout { msg_id } => write!(f, "transaction {msg_id} timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One consequence of a transport event, executed by the caller.
#[derive(Clone, Debug)]
pub enum Action {
    /// Hand a packet to the datalink for transmission.
    Send {
        /// The packet's header (carries addressing).
        header: Header,
        /// The packet's payload.
        payload: Arc<[u8]>,
        /// `true` when this packet repeats an earlier transmission
        /// (go-back-N resend, request-response retry) — kept out of the
        /// header because the wire does not distinguish them, but the
        /// flight recorder does.
        retransmit: bool,
    },
    /// Deliver a complete message to a local mailbox.
    Deliver {
        /// Destination mailbox address.
        mailbox: u16,
        /// The reassembled message.
        msg: Message,
    },
    /// Arm a timer; the caller invokes `on_timer(now, token)` at expiry.
    SetTimer {
        /// Token to pass back at expiry.
        token: TimerToken,
        /// Delay from now.
        delay: Dur,
    },
    /// Cancel a previously armed timer (best effort — stale expirations
    /// are also filtered by token).
    CancelTimer {
        /// The token being cancelled.
        token: TimerToken,
    },
    /// Sender-side completion: the message is fully acknowledged
    /// (byte-stream) or the response arrived (request-response).
    Complete {
        /// The completed message/transaction id.
        msg_id: u32,
    },
    /// Report an error to the protocol's user.
    Error(TransportError),
}

impl Action {
    /// `true` for [`Action::Send`].
    pub fn is_send(&self) -> bool {
        matches!(self, Action::Send { .. })
    }

    /// `true` for [`Action::Deliver`].
    pub fn is_deliver(&self) -> bool {
        matches!(self, Action::Deliver { .. })
    }
}

/// Convenience: the send actions in an action list.
pub fn sends(actions: &[Action]) -> Vec<(&Header, &Arc<[u8]>)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Send { header, payload, .. } => Some((header, payload)),
            _ => None,
        })
        .collect()
}

/// Convenience: the delivered messages in an action list.
pub fn deliveries(actions: &[Action]) -> Vec<(u16, &Message)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Deliver { mailbox, msg } => Some((*mailbox, msg)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::PacketKind;
    use nectar_cab::board::CabId;

    #[test]
    fn action_predicates() {
        let h = Header::new(PacketKind::Datagram, CabId::new(0), CabId::new(1));
        let send = Action::Send { header: h, payload: Arc::from(vec![1u8]), retransmit: false };
        assert!(send.is_send());
        assert!(!send.is_deliver());
        let deliver = Action::Deliver { mailbox: 3, msg: Message::new(1, 0, vec![2u8]) };
        assert!(deliver.is_deliver());
    }

    #[test]
    fn extraction_helpers() {
        let h = Header::new(PacketKind::Datagram, CabId::new(0), CabId::new(1));
        let actions = vec![
            Action::Send { header: h, payload: Arc::from(vec![1u8]), retransmit: false },
            Action::Deliver { mailbox: 9, msg: Message::new(1, 0, vec![]) },
            Action::SetTimer { token: TimerToken(1), delay: Dur::from_micros(1) },
        ];
        assert_eq!(sends(&actions).len(), 1);
        let del = deliveries(&actions);
        assert_eq!(del.len(), 1);
        assert_eq!(del[0].0, 9);
    }

    #[test]
    fn error_display() {
        let e = TransportError::TooLarge { size: 2000, limit: 990 };
        assert!(e.to_string().contains("2000"));
        assert!(TransportError::Timeout { msg_id: 7 }.to_string().contains('7'));
    }
}
