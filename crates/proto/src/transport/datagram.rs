//! The datagram protocol.
//!
//! "The datagram protocol has low overhead but does not guarantee
//! packet delivery; it is a direct interface to the datalink layer and
//! should only be used by applications that can tolerate or recover
//! from lost packets" (§6.2.2). One message = one packet; no timers, no
//! state beyond counters.

use crate::header::{Header, PacketKind, MAX_FRAGMENT_PAYLOAD};
use crate::transport::{Action, TransportError};
use nectar_cab::board::CabId;
use nectar_kernel::mailbox::Message;
use nectar_sim::time::Time;
use std::sync::Arc;

/// The stateless datagram endpoint of one CAB.
///
/// # Examples
///
/// ```
/// use nectar_proto::transport::datagram::Datagram;
/// use nectar_proto::transport::sends;
/// use nectar_cab::board::CabId;
/// use nectar_sim::time::Time;
///
/// let mut dg = Datagram::new(CabId::new(0));
/// let mut out = Vec::new();
/// dg.send(Time::ZERO, CabId::new(1), 2, 3, b"fire and forget", &mut out);
/// assert_eq!(sends(&out).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Datagram {
    local: CabId,
    next_msg_id: u32,
    sent: u64,
    received: u64,
    oversize_rejected: u64,
}

impl Datagram {
    /// A datagram endpoint for `local`.
    pub fn new(local: CabId) -> Datagram {
        Datagram { local, next_msg_id: 0, sent: 0, received: 0, oversize_rejected: 0 }
    }

    /// Largest datagram payload: one packet-switched packet.
    pub const MAX_PAYLOAD: usize = MAX_FRAGMENT_PAYLOAD;

    /// Sends `data` to `dst_mailbox` on `dst`; returns the message id.
    /// Appends a [`Action::Send`], or [`Action::Error`] if the payload
    /// cannot fit one packet (datagrams do not fragment).
    pub fn send(
        &mut self,
        _now: Time,
        dst: CabId,
        src_mailbox: u16,
        dst_mailbox: u16,
        data: &[u8],
        out: &mut Vec<Action>,
    ) -> u32 {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        if data.len() > Self::MAX_PAYLOAD {
            self.oversize_rejected += 1;
            out.push(Action::Error(TransportError::TooLarge {
                size: data.len(),
                limit: Self::MAX_PAYLOAD,
            }));
            return msg_id;
        }
        let header = Header {
            src_mailbox,
            dst_mailbox,
            msg_id,
            payload_len: data.len() as u16,
            ..Header::new(PacketKind::Datagram, self.local, dst)
        };
        self.sent += 1;
        out.push(Action::Send { header, payload: Arc::from(data.to_vec()), retransmit: false });
        msg_id
    }

    /// Handles an arriving datagram packet: deliver to the destination
    /// mailbox, no acknowledgement.
    pub fn on_packet(
        &mut self,
        _now: Time,
        header: &Header,
        payload: &[u8],
        out: &mut Vec<Action>,
    ) {
        debug_assert_eq!(header.kind, PacketKind::Datagram);
        self.received += 1;
        out.push(Action::Deliver {
            mailbox: header.dst_mailbox,
            msg: Message::new(header.msg_id as u64, header.src_mailbox as u32, payload.to_vec()),
        });
    }

    /// `(sent, received, oversize_rejected)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.sent, self.received, self.oversize_rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{deliveries, sends};

    #[test]
    fn send_produces_one_packet() {
        let mut dg = Datagram::new(CabId::new(3));
        let mut out = Vec::new();
        let id = dg.send(Time::ZERO, CabId::new(1), 10, 20, b"payload", &mut out);
        let s = sends(&out);
        assert_eq!(s.len(), 1);
        let (h, p) = s[0];
        assert_eq!(h.kind, PacketKind::Datagram);
        assert_eq!(h.src_cab, CabId::new(3));
        assert_eq!(h.dst_cab, CabId::new(1));
        assert_eq!(h.dst_mailbox, 20);
        assert_eq!(h.msg_id, id);
        assert_eq!(&p[..], b"payload");
    }

    #[test]
    fn receive_delivers_to_mailbox() {
        let mut tx = Datagram::new(CabId::new(0));
        let mut rx = Datagram::new(CabId::new(1));
        let mut out = Vec::new();
        tx.send(Time::ZERO, CabId::new(1), 4, 9, b"msg", &mut out);
        let (h, p) = {
            let s = sends(&out);
            (*s[0].0, s[0].1.clone())
        };
        let mut out2 = Vec::new();
        rx.on_packet(Time::ZERO, &h, &p, &mut out2);
        let d = deliveries(&out2);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 9);
        assert_eq!(d[0].1.data(), b"msg");
        assert_eq!(rx.stats().1, 1);
    }

    #[test]
    fn oversize_is_an_error_not_a_panic() {
        let mut dg = Datagram::new(CabId::new(0));
        let mut out = Vec::new();
        dg.send(Time::ZERO, CabId::new(1), 0, 0, &vec![0u8; 5000], &mut out);
        assert!(matches!(out[0], Action::Error(TransportError::TooLarge { .. })));
        assert_eq!(dg.stats(), (0, 0, 1));
    }

    #[test]
    fn message_ids_increment() {
        let mut dg = Datagram::new(CabId::new(0));
        let mut out = Vec::new();
        let a = dg.send(Time::ZERO, CabId::new(1), 0, 0, b"a", &mut out);
        let b = dg.send(Time::ZERO, CabId::new(1), 0, 0, b"b", &mut out);
        assert_eq!(b, a + 1);
    }
}
