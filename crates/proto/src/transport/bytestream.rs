//! The byte-stream protocol: reliable, ordered message transfer.
//!
//! "The byte-stream protocol provides reliable communication using
//! acknowledgments, retransmissions, and a sliding window for flow
//! control" (§6.2.2). The implementation is go-back-N: the sender keeps
//! up to `window` packets in flight; the receiver accepts only the
//! expected sequence number, acknowledges cumulatively, and drops
//! everything else; a retransmission timer resends the whole window.

use crate::header::{Header, PacketKind, MAX_FRAGMENT_PAYLOAD};
use crate::transport::frag::{fragment, Reassembler, ReassemblyOutcome};
use crate::transport::{Action, TimerToken};
use nectar_cab::board::CabId;
use nectar_kernel::mailbox::Message;
use nectar_sim::time::{Dur, Time};
use std::collections::VecDeque;
use std::sync::Arc;

/// RFC 1982-style serial comparison: `a < b` in sequence space. Holds
/// across u32 wraparound as long as the two numbers are within half the
/// space of each other (the window is tiny by comparison).
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < (1 << 31)
}

/// Serial `a <= b`; see [`seq_lt`].
#[inline]
pub fn seq_leq(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) < (1 << 31)
}

/// Byte-stream tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteStreamConfig {
    /// Maximum packets in flight (sender window).
    pub window: u16,
    /// Retransmission timeout.
    pub rto: Dur,
    /// Maximum payload per fragment.
    pub max_payload: usize,
}

impl Default for ByteStreamConfig {
    fn default() -> ByteStreamConfig {
        ByteStreamConfig {
            window: 8,
            // Must exceed the worst-case transmit queueing a healthy
            // link can impose: several streams multiplexing one fiber
            // hold a few windows of 1 KB packets (~82 us each) ahead of
            // a fresh packet. Spurious timeouts amplify themselves
            // (go-back-N resends whole windows), so the base RTO sits
            // well clear; exponential backoff covers the rest.
            rto: Dur::from_millis(5),
            max_payload: MAX_FRAGMENT_PAYLOAD,
        }
    }
}

#[derive(Clone, Debug)]
struct Outgoing {
    header: Header,
    payload: Arc<[u8]>,
}

/// Sender/receiver counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByteStreamStats {
    /// Data packets sent (first transmissions).
    pub data_sent: u64,
    /// Data packets retransmitted.
    pub retransmissions: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Messages fully acknowledged (sender side).
    pub completed: u64,
    /// Messages delivered (receiver side).
    pub delivered: u64,
    /// Duplicate data packets discarded.
    pub duplicates: u64,
    /// Out-of-order packets dropped (go-back-N).
    pub dropped_out_of_order: u64,
    /// Retransmission-timer expiries that resent the window.
    pub timeouts: u64,
    /// In-order data packets accepted (receiver side). At quiescence
    /// this equals the peer's `data_sent`.
    pub accepted: u64,
    /// In-order packets whose fragment fields contradicted the
    /// in-progress reassembly (corruption that survived the checksum);
    /// the fragment is dropped and counted, never fatal.
    pub reassembly_mismatches: u64,
    /// Acks that closed the peer window to zero (sender side).
    pub zero_window_stalls: u64,
    /// Persist-timer probes sent while stalled on a zero window.
    pub window_probes: u64,
}

/// One full-duplex byte-stream connection between `local` and `peer`.
///
/// # Examples
///
/// ```
/// use nectar_proto::transport::bytestream::{ByteStream, ByteStreamConfig};
/// use nectar_proto::transport::sends;
/// use nectar_cab::board::CabId;
/// use nectar_sim::time::Time;
///
/// let mut tx = ByteStream::new(CabId::new(0), CabId::new(1), ByteStreamConfig::default());
/// let mut out = Vec::new();
/// tx.send_message(Time::ZERO, 1, 2, b"hello", &mut out);
/// assert_eq!(sends(&out).len(), 1); // one fragment in flight
/// ```
#[derive(Clone, Debug)]
pub struct ByteStream {
    cfg: ByteStreamConfig,
    local: CabId,
    peer: CabId,
    // Sender state.
    next_seq: u32,
    base: u32,
    inflight: VecDeque<Outgoing>,
    backlog: VecDeque<Outgoing>,
    msg_last_seq: VecDeque<(u32, u32)>,
    next_msg_id: u32,
    peer_window: u16,
    timer_gen: u64,
    timer_active: bool,
    /// Consecutive timeouts without progress (exponential backoff).
    backoff: u32,
    // Receiver state.
    expected: u32,
    reasm: Reassembler,
    stats: ByteStreamStats,
}

impl ByteStream {
    /// A connection endpoint on `local` talking to `peer`.
    pub fn new(local: CabId, peer: CabId, cfg: ByteStreamConfig) -> ByteStream {
        ByteStream {
            peer_window: cfg.window,
            cfg,
            local,
            peer,
            next_seq: 0,
            base: 0,
            inflight: VecDeque::new(),
            backlog: VecDeque::new(),
            msg_last_seq: VecDeque::new(),
            next_msg_id: 0,
            timer_gen: 0,
            timer_active: false,
            backoff: 0,
            expected: 0,
            reasm: Reassembler::new(),
            stats: ByteStreamStats::default(),
        }
    }

    /// The peer this connection talks to.
    pub fn peer(&self) -> CabId {
        self.peer
    }

    /// Counters.
    pub fn stats(&self) -> ByteStreamStats {
        self.stats
    }

    /// Packets currently in flight (unacknowledged).
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// `true` when nothing is queued or unacknowledged.
    pub fn is_quiescent(&self) -> bool {
        self.inflight.is_empty() && self.backlog.is_empty()
    }

    /// Queues `data` for reliable delivery to `dst_mailbox` on the
    /// peer, fragmenting as needed, and transmits as far as the window
    /// allows. Returns the message id; an [`Action::Complete`] with it
    /// follows once every fragment is acknowledged.
    pub fn send_message(
        &mut self,
        now: Time,
        src_mailbox: u16,
        dst_mailbox: u16,
        data: &[u8],
        out: &mut Vec<Action>,
    ) -> u32 {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        let frags = fragment(data, self.cfg.max_payload);
        let count = frags.len() as u16;
        for (i, payload) in frags.into_iter().enumerate() {
            let header = Header {
                src_mailbox,
                dst_mailbox,
                msg_id,
                frag_index: i as u16,
                frag_count: count,
                seq: self.next_seq,
                window: self.cfg.window,
                payload_len: payload.len() as u16,
                ..Header::new(PacketKind::Data, self.local, self.peer)
            };
            self.next_seq = self.next_seq.wrapping_add(1);
            self.backlog.push_back(Outgoing { header, payload });
        }
        self.msg_last_seq.push_back((msg_id, self.next_seq.wrapping_sub(1)));
        self.pump(now, out);
        msg_id
    }

    fn effective_window(&self) -> usize {
        // A zero advertisement really means zero: the sender stalls and
        // the persist timer (not new data) probes for a reopen.
        if self.peer_window == 0 {
            0
        } else {
            self.cfg.window.min(self.peer_window) as usize
        }
    }

    /// `true` when the peer closed its window while data is waiting:
    /// nothing in flight to trigger an ack, so only a persist-timer
    /// probe can discover the reopen.
    fn stalled_on_zero_window(&self) -> bool {
        self.inflight.is_empty() && !self.backlog.is_empty() && self.effective_window() == 0
    }

    fn pump(&mut self, _now: Time, out: &mut Vec<Action>) {
        let was_idle = self.inflight.is_empty();
        while self.inflight.len() < self.effective_window() {
            let Some(pkt) = self.backlog.pop_front() else { break };
            out.push(Action::Send {
                header: pkt.header,
                payload: pkt.payload.clone(),
                retransmit: false,
            });
            self.stats.data_sent += 1;
            self.inflight.push_back(pkt);
        }
        if was_idle && !self.inflight.is_empty() {
            self.arm_timer(out);
        } else if !self.timer_active && self.stalled_on_zero_window() {
            // Queued into a closed window with nothing in flight: the
            // persist timer is the only way forward.
            self.arm_timer(out);
        }
    }

    fn arm_timer(&mut self, out: &mut Vec<Action>) {
        self.timer_gen += 1;
        self.timer_active = true;
        // Exponential backoff: consecutive timeouts without progress
        // stretch the timer so a congested (but healthy) path does not
        // amplify its own queueing into a retransmission storm.
        let base = self.cfg.rto * (1u64 << self.backoff.min(6));
        // Jitter (up to ~25% of the base, deterministic) keeps the
        // retransmission clock from phase-locking with any periodic
        // outage on the path: once the backoff caps, an unjittered
        // timer whose fixed period is a multiple of the outage period
        // retries at the same dead phase forever, turning a recoverable
        // link flap into a permanent stall. Hashing the timer
        // generation and endpoint ids keeps runs reproducible.
        let h = self
            .timer_gen
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((self.local.raw() as u64) << 32) ^ self.peer.raw() as u64);
        let jitter = Dur::from_nanos(base.nanos() / 1024 * (h >> 56));
        out.push(Action::SetTimer { token: TimerToken(self.timer_gen), delay: base + jitter });
    }

    fn stop_timer(&mut self, out: &mut Vec<Action>) {
        if self.timer_active {
            out.push(Action::CancelTimer { token: TimerToken(self.timer_gen) });
            self.timer_active = false;
        }
    }

    /// Handles an arriving byte-stream packet (data or ack).
    pub fn on_packet(&mut self, now: Time, header: &Header, payload: &[u8], out: &mut Vec<Action>) {
        match header.kind {
            PacketKind::Data => self.on_data(header, payload, out),
            PacketKind::Ack => self.on_ack(now, header, out),
            other => debug_assert!(false, "byte-stream got {other}"),
        }
    }

    fn send_ack(&mut self, out: &mut Vec<Action>) {
        let header = Header {
            ack: self.expected,
            window: self.cfg.window,
            ..Header::new(PacketKind::Ack, self.local, self.peer)
        };
        self.stats.acks_sent += 1;
        out.push(Action::Send { header, payload: Arc::from(Vec::new()), retransmit: false });
    }

    fn on_data(&mut self, header: &Header, payload: &[u8], out: &mut Vec<Action>) {
        if header.seq == self.expected {
            self.expected = self.expected.wrapping_add(1);
            self.stats.accepted += 1;
            match self.reasm.push(header.msg_id, header.frag_index, header.frag_count, payload) {
                ReassemblyOutcome::Complete(buf) => {
                    self.stats.delivered += 1;
                    out.push(Action::Deliver {
                        mailbox: header.dst_mailbox,
                        msg: Message::new(header.msg_id as u64, header.src_mailbox as u32, buf),
                    });
                }
                ReassemblyOutcome::Incomplete => {}
                ReassemblyOutcome::Mismatch => {
                    // Fragment fields contradict the in-progress
                    // reassembly: corruption that survived the checksum
                    // (chaos can flip header bits) or a sender bug. The
                    // fragment is dropped and counted; the world
                    // surfaces the counter to the pathology detectors.
                    self.stats.reassembly_mismatches += 1;
                }
            }
        } else if seq_lt(header.seq, self.expected) {
            self.stats.duplicates += 1;
        } else {
            self.stats.dropped_out_of_order += 1;
        }
        // Cumulative ack in every case tells the sender where we are.
        self.send_ack(out);
    }

    fn on_ack(&mut self, now: Time, header: &Header, out: &mut Vec<Action>) {
        // The advertisement is honored even at zero (the stall case) —
        // a receiver must be able to close the window.
        let was_closed = self.peer_window == 0;
        if header.window == 0 && !was_closed {
            self.stats.zero_window_stalls += 1;
        }
        self.peer_window = header.window;
        if seq_leq(header.ack, self.base) {
            // No new data acknowledged. A reopening advertisement on a
            // duplicate ack still matters: the stalled backlog must
            // flow again. Anything else is covered by the timer.
            if !(was_closed && header.window > 0) {
                return;
            }
        } else {
            while self.inflight.front().is_some_and(|pkt| seq_lt(pkt.header.seq, header.ack)) {
                self.inflight.pop_front();
            }
            self.base = header.ack;
            self.backoff = 0; // progress: reset the retransmission backoff
                              // Completion callbacks for fully acknowledged messages.
            while self.msg_last_seq.front().is_some_and(|&(_, last)| seq_lt(last, self.base)) {
                let (msg_id, _) = self.msg_last_seq.pop_front().expect("front exists");
                self.stats.completed += 1;
                out.push(Action::Complete { msg_id });
            }
        }
        self.pump(now, out);
        if self.inflight.is_empty() {
            if self.stalled_on_zero_window() {
                // Nothing in flight to draw an ack: keep the persist
                // timer running so the reopen cannot be lost.
                self.arm_timer(out);
            } else {
                self.stop_timer(out);
            }
        } else {
            self.arm_timer(out);
        }
    }

    /// Handles a retransmission-timer expiry. Stale tokens (from timers
    /// superseded by an ack) are ignored.
    pub fn on_timer(&mut self, _now: Time, token: TimerToken, out: &mut Vec<Action>) {
        if !self.timer_active || token.0 != self.timer_gen {
            return;
        }
        if self.inflight.is_empty() {
            if self.stalled_on_zero_window() {
                // Persist probe (the TCP zero-window probe, §6.2.2's
                // flow control turned all the way down): send one
                // packet from the backlog to solicit a fresh
                // advertisement. Without this the stall deadlocks when
                // the reopening ack is lost.
                let pkt = self.backlog.pop_front().expect("stalled implies backlog");
                out.push(Action::Send {
                    header: pkt.header,
                    payload: pkt.payload.clone(),
                    retransmit: false,
                });
                self.stats.data_sent += 1;
                self.stats.window_probes += 1;
                self.inflight.push_back(pkt);
                self.backoff += 1; // probes back off like retransmits
                self.arm_timer(out);
            } else {
                self.timer_active = false;
            }
            return;
        }
        // Go-back-N: resend the whole window.
        self.stats.timeouts += 1;
        for pkt in &self.inflight {
            out.push(Action::Send {
                header: pkt.header,
                payload: pkt.payload.clone(),
                retransmit: true,
            });
            self.stats.retransmissions += 1;
        }
        self.backoff += 1;
        self.arm_timer(out);
    }

    /// Positions the sequence space at `seq` on both the sender
    /// (`next_seq`, `base`) and receiver (`expected`) sides, so tests
    /// can exercise u32 wraparound without sending 2^32 packets. Only
    /// meaningful on an idle stream; both endpoints of a connection
    /// must be preseeded identically.
    ///
    /// # Panics
    ///
    /// Panics if the stream has traffic queued or in flight.
    pub fn preseed_seq(&mut self, seq: u32) {
        assert!(self.is_quiescent(), "preseed_seq requires an idle stream");
        self.next_seq = seq;
        self.base = seq;
        self.expected = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{deliveries, sends};

    /// A deterministic lossy channel harness between two endpoints.
    /// `drop_sends` lists global send indices (0-based, across both
    /// directions) that the "network" silently discards.
    struct Harness {
        a: ByteStream,
        b: ByteStream,
        drop_sends: Vec<usize>,
        send_count: usize,
        timers: Vec<(Time, usize, TimerToken)>, // (expiry, endpoint, token)
        now: Time,
        pub delivered: Vec<(u16, Message)>,
        pub completed: Vec<u32>,
    }

    impl Harness {
        fn new(cfg: ByteStreamConfig, drop_sends: Vec<usize>) -> Harness {
            Harness {
                a: ByteStream::new(CabId::new(0), CabId::new(1), cfg),
                b: ByteStream::new(CabId::new(1), CabId::new(0), cfg),
                drop_sends,
                send_count: 0,
                timers: Vec::new(),
                now: Time::ZERO,
                delivered: Vec::new(),
                completed: Vec::new(),
            }
        }

        fn process(&mut self, endpoint: usize, actions: Vec<Action>) {
            // One-hop "network" with 10 us latency per packet.
            let mut queue: Vec<(usize, Vec<Action>)> = vec![(endpoint, actions)];
            while let Some((from, actions)) = queue.pop() {
                for action in actions {
                    match action {
                        Action::Send { header, payload, .. } => {
                            let idx = self.send_count;
                            self.send_count += 1;
                            if self.drop_sends.contains(&idx) {
                                continue;
                            }
                            self.now += Dur::from_micros(10);
                            let to = 1 - from;
                            let mut out = Vec::new();
                            let target = if to == 0 { &mut self.a } else { &mut self.b };
                            target.on_packet(self.now, &header, &payload, &mut out);
                            queue.push((to, out));
                        }
                        Action::Deliver { mailbox, msg } => self.delivered.push((mailbox, msg)),
                        Action::SetTimer { token, delay } => {
                            self.timers.push((self.now + delay, from, token));
                        }
                        Action::CancelTimer { token } => {
                            self.timers.retain(|&(_, ep, t)| !(ep == from && t == token));
                        }
                        Action::Complete { msg_id } => self.completed.push(msg_id),
                        Action::Error(e) => panic!("unexpected transport error: {e}"),
                    }
                }
            }
        }

        fn send(&mut self, data: &[u8]) -> u32 {
            let mut out = Vec::new();
            let id = self.a.send_message(self.now, 1, 2, data, &mut out);
            self.process(0, out);
            id
        }

        /// Fires timers until both endpoints quiesce.
        fn run_to_quiescence(&mut self) {
            let mut guard = 0;
            while !(self.a.is_quiescent() && self.b.is_quiescent()) {
                guard += 1;
                assert!(guard < 1000, "protocol did not converge");
                self.timers.sort_by_key(|&(t, _, _)| t);
                let Some((at, ep, token)) = self.timers.first().copied() else {
                    panic!(
                        "stuck with no timers: a={:?} b={:?}",
                        self.a.inflight(),
                        self.b.inflight()
                    );
                };
                self.timers.remove(0);
                self.now = self.now.max(at);
                let mut out = Vec::new();
                if ep == 0 {
                    self.a.on_timer(self.now, token, &mut out);
                } else {
                    self.b.on_timer(self.now, token, &mut out);
                }
                self.process(ep, out);
            }
        }
    }

    #[test]
    fn small_message_delivered_and_completed() {
        let mut h = Harness::new(ByteStreamConfig::default(), vec![]);
        let id = h.send(b"hello nectar");
        h.run_to_quiescence();
        assert_eq!(h.delivered.len(), 1);
        assert_eq!(h.delivered[0].0, 2);
        assert_eq!(h.delivered[0].1.data(), b"hello nectar");
        assert_eq!(h.completed, vec![id]);
        assert_eq!(h.a.stats().retransmissions, 0);
    }

    #[test]
    fn large_message_fragments_and_reassembles_intact() {
        let mut h = Harness::new(ByteStreamConfig::default(), vec![]);
        let data: Vec<u8> = (0..5000u32).map(|i| (i * 7) as u8).collect();
        h.send(&data);
        h.run_to_quiescence();
        assert_eq!(h.delivered.len(), 1);
        assert_eq!(h.delivered[0].1.data(), &data[..]);
        // 5000 / 990 -> 6 fragments.
        assert_eq!(h.a.stats().data_sent, 6);
        assert_eq!(h.b.stats().delivered, 1);
    }

    #[test]
    fn lost_data_packet_is_retransmitted() {
        // Drop the very first send (data fragment 0).
        let mut h = Harness::new(ByteStreamConfig::default(), vec![0]);
        let data = vec![9u8; 3000];
        h.send(&data);
        h.run_to_quiescence();
        assert_eq!(h.delivered.len(), 1);
        assert_eq!(h.delivered[0].1.data(), &data[..]);
        assert!(h.a.stats().retransmissions > 0);
        // Go-back-N: the receiver dropped the out-of-order successors.
        assert!(h.b.stats().dropped_out_of_order > 0);
    }

    #[test]
    fn lost_ack_causes_duplicate_not_double_delivery() {
        // The first ack (send index 1: data=0, ack=1) is dropped.
        let mut h = Harness::new(ByteStreamConfig::default(), vec![1]);
        h.send(b"once only");
        h.run_to_quiescence();
        assert_eq!(h.delivered.len(), 1, "exactly-once delivery to the mailbox");
        assert!(h.b.stats().duplicates > 0, "the retransmission was recognized as a duplicate");
        assert_eq!(h.completed.len(), 1);
    }

    #[test]
    fn window_limits_packets_in_flight() {
        let cfg = ByteStreamConfig { window: 2, ..ByteStreamConfig::default() };
        let mut tx = ByteStream::new(CabId::new(0), CabId::new(1), cfg);
        let mut out = Vec::new();
        tx.send_message(Time::ZERO, 0, 0, &vec![0u8; 5000], &mut out);
        let sent = out.iter().filter(|a| a.is_send()).count();
        assert_eq!(sent, 2, "window of 2 caps the initial burst");
        assert_eq!(tx.inflight(), 2);
    }

    #[test]
    fn back_to_back_messages_all_complete_in_order() {
        let mut h = Harness::new(ByteStreamConfig::default(), vec![]);
        let ids: Vec<u32> = (0..5).map(|i| h.send(&vec![i as u8; 1500])).collect();
        h.run_to_quiescence();
        assert_eq!(h.completed, ids);
        assert_eq!(h.delivered.len(), 5);
        for (i, (_, msg)) in h.delivered.iter().enumerate() {
            assert_eq!(msg.data(), &vec![i as u8; 1500][..], "messages arrive in order");
        }
    }

    #[test]
    fn heavy_loss_still_converges() {
        // Drop a third of the first 30 transmissions.
        let drops: Vec<usize> = (0..30).filter(|i| i % 3 == 0).collect();
        let mut h = Harness::new(ByteStreamConfig::default(), drops);
        let data: Vec<u8> = (0..8000u32).map(|i| (i % 251) as u8).collect();
        h.send(&data);
        h.run_to_quiescence();
        assert_eq!(h.delivered.len(), 1);
        assert_eq!(h.delivered[0].1.data(), &data[..]);
    }

    #[test]
    fn stale_timer_tokens_are_ignored() {
        let mut tx = ByteStream::new(CabId::new(0), CabId::new(1), ByteStreamConfig::default());
        let mut out = Vec::new();
        tx.send_message(Time::ZERO, 0, 0, b"x", &mut out);
        let token = out
            .iter()
            .find_map(|a| match a {
                Action::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .expect("timer armed");
        // An ack arrives, superseding the timer...
        let ack = Header {
            ack: 1,
            window: 8,
            ..Header::new(PacketKind::Ack, CabId::new(1), CabId::new(0))
        };
        let mut out2 = Vec::new();
        tx.on_packet(Time::ZERO, &ack, &[], &mut out2);
        // ...so the old token must do nothing.
        let mut out3 = Vec::new();
        tx.on_timer(Time::from_millis(1), token, &mut out3);
        assert!(out3.is_empty(), "stale timer retransmitted: {out3:?}");
        assert_eq!(tx.stats().retransmissions, 0);
    }

    #[test]
    fn serial_arithmetic_orders_across_wrap() {
        assert!(seq_lt(u32::MAX, 0), "MAX precedes 0 in sequence space");
        assert!(seq_lt(u32::MAX - 3, u32::MAX));
        assert!(seq_lt(0, 1));
        assert!(!seq_lt(0, u32::MAX), "0 does not precede MAX");
        assert!(!seq_lt(5, 5));
        assert!(seq_leq(5, 5));
        assert!(seq_leq(u32::MAX, 1));
    }

    #[test]
    fn stream_survives_sequence_wraparound() {
        // Seed both endpoints three packets shy of u32::MAX: the third
        // message's fragments straddle the wrap. Before the serial-
        // arithmetic fix this panicked in debug (`next_seq += 1`
        // overflow) and misclassified post-wrap packets as duplicates.
        let mut h = Harness::new(ByteStreamConfig::default(), vec![]);
        h.a.preseed_seq(u32::MAX - 3);
        h.b.preseed_seq(u32::MAX - 3);
        let msgs: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 2500]).collect();
        let ids: Vec<u32> = msgs.iter().map(|m| h.send(m)).collect();
        h.run_to_quiescence();
        assert_eq!(h.completed, ids, "every message completes across the wrap");
        assert_eq!(h.delivered.len(), 4);
        for (i, (_, msg)) in h.delivered.iter().enumerate() {
            assert_eq!(msg.data(), &msgs[i][..], "message {i} intact");
        }
        assert_eq!(h.b.stats().duplicates, 0, "no post-wrap packet misread as duplicate");
    }

    #[test]
    fn wraparound_with_loss_still_delivers_exactly_once() {
        // Drop the first data packet (the last pre-wrap sequence
        // number) and an ack: recovery must work across the boundary.
        let mut h = Harness::new(ByteStreamConfig::default(), vec![0, 4]);
        h.a.preseed_seq(u32::MAX);
        h.b.preseed_seq(u32::MAX);
        let data: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        let id = h.send(&data);
        h.run_to_quiescence();
        assert_eq!(h.completed, vec![id]);
        assert_eq!(h.delivered.len(), 1, "exactly once");
        assert_eq!(h.delivered[0].1.data(), &data[..]);
        assert!(h.a.stats().retransmissions > 0, "the loss was actually recovered");
    }

    #[test]
    fn zero_window_stalls_then_probe_reopens() {
        // Window 4, six fragments: four fly, two stall in the backlog.
        let cfg = ByteStreamConfig { window: 4, ..ByteStreamConfig::default() };
        let mut tx = ByteStream::new(CabId::new(0), CabId::new(1), cfg);
        let mut out = Vec::new();
        tx.send_message(Time::ZERO, 1, 2, &vec![7u8; 5000], &mut out);
        assert_eq!(sends(&out).len(), 4);
        // The receiver acks everything in flight and slams the window
        // shut. Before the fix the zero advertisement was ignored and
        // the backlog poured out here.
        let closed = Header {
            ack: 4,
            window: 0,
            ..Header::new(PacketKind::Ack, CabId::new(1), CabId::new(0))
        };
        let mut out2 = Vec::new();
        tx.on_packet(Time::ZERO, &closed, &[], &mut out2);
        assert!(sends(&out2).is_empty(), "window closed: the backlog must stall");
        assert_eq!(tx.stats().zero_window_stalls, 1);
        assert_eq!(tx.inflight(), 0);
        let persist = out2
            .iter()
            .find_map(|a| match a {
                Action::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .expect("persist timer armed while stalled");
        // The persist timer fires: exactly one probe packet flies.
        let mut out3 = Vec::new();
        tx.on_timer(Time::from_millis(5), persist, &mut out3);
        assert_eq!(sends(&out3).len(), 1, "one probe, not the whole backlog");
        assert_eq!(tx.stats().window_probes, 1);
        // The probe is acked with the window still closed: stall holds,
        // persist timer stays alive.
        let still_closed = Header {
            ack: 5,
            window: 0,
            ..Header::new(PacketKind::Ack, CabId::new(1), CabId::new(0))
        };
        let mut out4 = Vec::new();
        tx.on_packet(Time::from_millis(5), &still_closed, &[], &mut out4);
        assert!(sends(&out4).is_empty());
        assert!(
            out4.iter().any(|a| matches!(a, Action::SetTimer { .. })),
            "persist timer re-armed: {out4:?}"
        );
        // The window reopens on a duplicate ack (no new data acked):
        // the stalled fragment must flow immediately.
        let reopen = Header {
            ack: 5,
            window: 4,
            ..Header::new(PacketKind::Ack, CabId::new(1), CabId::new(0))
        };
        let mut out5 = Vec::new();
        tx.on_packet(Time::from_millis(6), &reopen, &[], &mut out5);
        assert_eq!(sends(&out5).len(), 1, "reopen releases the backlog");
        // Final ack completes the message.
        let fin = Header {
            ack: 6,
            window: 4,
            ..Header::new(PacketKind::Ack, CabId::new(1), CabId::new(0))
        };
        let mut out6 = Vec::new();
        tx.on_packet(Time::from_millis(7), &fin, &[], &mut out6);
        assert!(out6.iter().any(|a| matches!(a, Action::Complete { .. })));
        assert!(tx.is_quiescent());
    }

    #[test]
    fn reassembly_mismatch_is_counted_not_fatal() {
        let mut rx = ByteStream::new(CabId::new(1), CabId::new(0), ByteStreamConfig::default());
        let mut out = Vec::new();
        // Fragment 0 of a two-fragment message arrives in order.
        let h0 = Header {
            src_mailbox: 1,
            dst_mailbox: 2,
            msg_id: 0,
            frag_index: 0,
            frag_count: 2,
            seq: 0,
            window: 8,
            payload_len: 2,
            ..Header::new(PacketKind::Data, CabId::new(0), CabId::new(1))
        };
        rx.on_packet(Time::ZERO, &h0, b"aa", &mut out);
        // The next in-order packet claims a different message id
        // mid-reassembly — corruption that survived the checksum.
        // Before the fix this was debug_assert!(false): a guaranteed
        // abort of debug builds on a reachable path.
        let h1 = Header { msg_id: 9, frag_index: 1, seq: 1, ..h0 };
        let mut out2 = Vec::new();
        rx.on_packet(Time::ZERO, &h1, b"bb", &mut out2);
        assert_eq!(rx.stats().reassembly_mismatches, 1);
        assert_eq!(rx.stats().delivered, 0, "the mangled message is not delivered");
        assert!(
            out2.iter().any(
                |a| matches!(a, Action::Send { header, .. } if header.kind == PacketKind::Ack)
            ),
            "the ack still flows so the sender is not wedged"
        );
    }

    /// Regression: an unjittered retransmission timer phase-locks with
    /// a periodic outage. With `rto = 5ms` every backoff step (5, 10,
    /// 20, ... 320ms) is a multiple of the 2.5ms outage period below,
    /// so every retransmit used to land in the same 1.5ms down-window
    /// forever and one recoverable flap became a permanent stall
    /// (found by the chaos campaign: seed 707, `flap(1500us,1ms)`).
    /// The deterministic jitter in `arm_timer` breaks the lock.
    #[test]
    fn capped_backoff_does_not_phase_lock_with_periodic_outage() {
        let outage = |t: Time| t.nanos() % 2_500_000 < 1_500_000;
        let cfg = ByteStreamConfig { rto: Dur::from_millis(5), ..Default::default() };
        let mut a = ByteStream::new(CabId::new(0), CabId::new(1), cfg);
        let mut b = ByteStream::new(CabId::new(1), CabId::new(0), cfg);
        let mut now = Time::ZERO;
        let mut timers: Vec<(Time, usize, TimerToken)> = Vec::new();
        let mut pending: Vec<(usize, Action)> = Vec::new();
        let mut out = Vec::new();
        a.send_message(now, 1, 2, &[7u8; 300], &mut out);
        pending.extend(out.into_iter().map(|x| (0usize, x)));
        let mut delivered = 0usize;
        let mut guard = 0;
        while !(pending.is_empty() && a.is_quiescent() && b.is_quiescent()) {
            guard += 1;
            assert!(guard < 5_000, "phase-locked: no convergence after {:?}", now);
            if let Some((from, action)) = pending.pop() {
                match action {
                    Action::Send { header, payload, .. } => {
                        if outage(now) {
                            continue; // the wire is down: packet destroyed
                        }
                        now += Dur::from_micros(10);
                        let to = 1 - from;
                        let mut out = Vec::new();
                        let target = if to == 0 { &mut a } else { &mut b };
                        target.on_packet(now, &header, &payload, &mut out);
                        pending.extend(out.into_iter().map(|x| (to, x)));
                    }
                    Action::Deliver { .. } => delivered += 1,
                    Action::SetTimer { token, delay } => timers.push((now + delay, from, token)),
                    Action::CancelTimer { token } => {
                        timers.retain(|&(_, ep, t)| !(ep == from && t == token));
                    }
                    Action::Complete { .. } | Action::Error(_) => {}
                }
                continue;
            }
            timers.sort_by_key(|&(t, _, _)| t);
            assert!(!timers.is_empty(), "stuck with no timers at {now:?}");
            let (at, ep, token) = timers.remove(0);
            now = now.max(at);
            let mut out = Vec::new();
            let target = if ep == 0 { &mut a } else { &mut b };
            target.on_timer(now, token, &mut out);
            pending.extend(out.into_iter().map(|x| (ep, x)));
        }
        assert_eq!(
            delivered, 1,
            "exactly one delivery once the flap is survived (got {delivered} at {now:?})"
        );
        assert!(now < Time::from_millis(30_000), "took implausibly long: {now:?}");
    }

    #[test]
    fn deliveries_helper_sees_payload() {
        let mut h = Harness::new(ByteStreamConfig::default(), vec![]);
        h.send(b"abc");
        h.run_to_quiescence();
        let refs: Vec<Action> = h
            .delivered
            .iter()
            .map(|(mb, m)| Action::Deliver { mailbox: *mb, msg: m.clone() })
            .collect();
        assert_eq!(deliveries(&refs).len(), 1);
    }
}
