//! The request-response protocol.
//!
//! "The request-response protocol supports client-server interactions
//! such as remote procedure calls" (§6.2.2). Clients retransmit
//! unanswered requests a bounded number of times; servers suppress
//! duplicates by caching the response per transaction, so a lost
//! response does not re-execute the call (at-most-once semantics).

use crate::header::{Header, PacketKind, MAX_FRAGMENT_PAYLOAD};
use crate::transport::{Action, TimerToken, TransportError};
use nectar_cab::board::CabId;
use nectar_kernel::mailbox::Message;
use nectar_sim::time::{Dur, Time};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Request-response tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReqRespConfig {
    /// How long to wait for the response before retransmitting.
    pub rto: Dur,
    /// Total transmission attempts before reporting a timeout.
    pub max_attempts: u32,
    /// Responses the server caches for duplicate suppression.
    pub response_cache: usize,
}

impl Default for ReqRespConfig {
    fn default() -> ReqRespConfig {
        ReqRespConfig { rto: Dur::from_millis(1), max_attempts: 4, response_cache: 256 }
    }
}

#[derive(Clone, Debug)]
struct PendingCall {
    header: Header,
    payload: Arc<[u8]>,
    attempts: u32,
}

/// The client half: issues calls and matches responses.
///
/// # Examples
///
/// ```
/// use nectar_proto::transport::reqresp::{ReqRespClient, ReqRespConfig};
/// use nectar_proto::transport::sends;
/// use nectar_cab::board::CabId;
/// use nectar_sim::time::Time;
///
/// let mut client = ReqRespClient::new(CabId::new(0), ReqRespConfig::default());
/// let mut out = Vec::new();
/// client.call(Time::ZERO, CabId::new(1), 5, 80, b"GET status", &mut out);
/// assert_eq!(sends(&out).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ReqRespClient {
    cfg: ReqRespConfig,
    local: CabId,
    next_tx: u32,
    outstanding: HashMap<u32, PendingCall>,
    calls: u64,
    responses: u64,
    timeouts: u64,
    retransmissions: u64,
}

impl ReqRespClient {
    /// A client endpoint on `local`.
    pub fn new(local: CabId, cfg: ReqRespConfig) -> ReqRespClient {
        ReqRespClient {
            cfg,
            local,
            next_tx: 0,
            outstanding: HashMap::new(),
            calls: 0,
            responses: 0,
            timeouts: 0,
            retransmissions: 0,
        }
    }

    fn token(tx: u32, attempts: u32) -> TimerToken {
        TimerToken(((tx as u64) << 32) | attempts as u64)
    }

    /// Issues a call: the request goes to `service_mailbox` on `dst`,
    /// and the response will be delivered to local `reply_mailbox`.
    /// Returns the transaction id.
    ///
    /// Appends [`Action::Error`] instead of sending if the request
    /// exceeds one packet (RPC arguments ride in a single packet; bulk
    /// data belongs on the byte-stream protocol).
    pub fn call(
        &mut self,
        _now: Time,
        dst: CabId,
        reply_mailbox: u16,
        service_mailbox: u16,
        request: &[u8],
        out: &mut Vec<Action>,
    ) -> u32 {
        let tx = self.next_tx;
        self.next_tx += 1;
        if request.len() > MAX_FRAGMENT_PAYLOAD {
            out.push(Action::Error(TransportError::TooLarge {
                size: request.len(),
                limit: MAX_FRAGMENT_PAYLOAD,
            }));
            return tx;
        }
        let header = Header {
            src_mailbox: reply_mailbox,
            dst_mailbox: service_mailbox,
            msg_id: tx,
            payload_len: request.len() as u16,
            ..Header::new(PacketKind::Request, self.local, dst)
        };
        let payload: Arc<[u8]> = Arc::from(request.to_vec());
        self.calls += 1;
        out.push(Action::Send { header, payload: payload.clone(), retransmit: false });
        out.push(Action::SetTimer { token: Self::token(tx, 1), delay: self.cfg.rto });
        self.outstanding.insert(tx, PendingCall { header, payload, attempts: 1 });
        tx
    }

    /// Handles an arriving response packet.
    pub fn on_packet(
        &mut self,
        _now: Time,
        header: &Header,
        payload: &[u8],
        out: &mut Vec<Action>,
    ) {
        debug_assert_eq!(header.kind, PacketKind::Response);
        let tx = header.msg_id;
        let Some(pending) = self.outstanding.remove(&tx) else {
            return; // duplicate response after completion: drop
        };
        self.responses += 1;
        out.push(Action::CancelTimer { token: Self::token(tx, pending.attempts) });
        out.push(Action::Deliver {
            mailbox: pending.header.src_mailbox,
            msg: Message::new(tx as u64, tx, payload.to_vec()),
        });
        out.push(Action::Complete { msg_id: tx });
    }

    /// Handles a retransmission-timer expiry.
    pub fn on_timer(&mut self, _now: Time, token: TimerToken, out: &mut Vec<Action>) {
        let tx = (token.0 >> 32) as u32;
        let attempt = (token.0 & 0xFFFF_FFFF) as u32;
        let Some(pending) = self.outstanding.get_mut(&tx) else {
            return; // answered already
        };
        if pending.attempts != attempt {
            return; // stale timer from a superseded attempt
        }
        if pending.attempts >= self.cfg.max_attempts {
            self.outstanding.remove(&tx);
            self.timeouts += 1;
            out.push(Action::Error(TransportError::Timeout { msg_id: tx }));
            return;
        }
        pending.attempts += 1;
        self.retransmissions += 1;
        out.push(Action::Send {
            header: pending.header,
            payload: pending.payload.clone(),
            retransmit: true,
        });
        out.push(Action::SetTimer {
            token: Self::token(tx, pending.attempts),
            delay: self.cfg.rto,
        });
    }

    /// Calls still awaiting a response.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// `(calls, responses, timeouts, retransmissions)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.calls, self.responses, self.timeouts, self.retransmissions)
    }
}

type TxKey = (u16, u32); // (client CAB raw id, transaction)

/// The server half: delivers requests to the service mailbox and sends
/// (or replays) responses.
#[derive(Clone, Debug)]
pub struct ReqRespServer {
    cfg: ReqRespConfig,
    local: CabId,
    /// Requests delivered to the application, awaiting `respond`.
    pending: HashMap<TxKey, Header>,
    /// Completed transactions and their cached responses.
    cache: HashMap<TxKey, (Header, Arc<[u8]>)>,
    cache_order: VecDeque<TxKey>,
    requests: u64,
    duplicate_requests: u64,
    replays: u64,
}

impl ReqRespServer {
    /// A server endpoint on `local`.
    pub fn new(local: CabId, cfg: ReqRespConfig) -> ReqRespServer {
        ReqRespServer {
            cfg,
            local,
            pending: HashMap::new(),
            cache: HashMap::new(),
            cache_order: VecDeque::new(),
            requests: 0,
            duplicate_requests: 0,
            replays: 0,
        }
    }

    /// Handles an arriving request packet. New transactions are
    /// delivered to the service mailbox (message id = transaction, tag
    /// = client CAB id so the application can address its `respond`);
    /// retransmitted ones replay the cached response or are dropped if
    /// the call is still executing.
    pub fn on_packet(
        &mut self,
        _now: Time,
        header: &Header,
        payload: &[u8],
        out: &mut Vec<Action>,
    ) {
        debug_assert_eq!(header.kind, PacketKind::Request);
        let key = (header.src_cab.raw(), header.msg_id);
        if let Some((resp_header, resp_payload)) = self.cache.get(&key) {
            // Lost response: replay without re-executing (at-most-once).
            self.duplicate_requests += 1;
            self.replays += 1;
            out.push(Action::Send {
                header: *resp_header,
                payload: resp_payload.clone(),
                retransmit: true,
            });
            return;
        }
        if self.pending.contains_key(&key) {
            self.duplicate_requests += 1;
            return; // still executing: the response will answer both
        }
        self.requests += 1;
        self.pending.insert(key, *header);
        out.push(Action::Deliver {
            mailbox: header.dst_mailbox,
            msg: Message::new(header.msg_id as u64, header.src_cab.raw() as u32, payload.to_vec()),
        });
    }

    /// Sends the application's response for transaction `tx` from
    /// client `client`. Returns `false` (and sends nothing) if no such
    /// request is pending.
    pub fn respond(
        &mut self,
        _now: Time,
        client: CabId,
        tx: u32,
        response: &[u8],
        out: &mut Vec<Action>,
    ) -> bool {
        let key = (client.raw(), tx);
        let Some(req) = self.pending.remove(&key) else {
            return false;
        };
        let header = Header {
            src_mailbox: req.dst_mailbox,
            dst_mailbox: req.src_mailbox,
            msg_id: tx,
            payload_len: response.len() as u16,
            ..Header::new(PacketKind::Response, self.local, CabId::new(client.raw()))
        };
        let payload: Arc<[u8]> = Arc::from(response.to_vec());
        self.cache.insert(key, (header, payload.clone()));
        self.cache_order.push_back(key);
        while self.cache_order.len() > self.cfg.response_cache {
            let old = self.cache_order.pop_front().expect("non-empty");
            self.cache.remove(&old);
        }
        out.push(Action::Send { header, payload, retransmit: false });
        true
    }

    /// `(requests, duplicate_requests, replays)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.requests, self.duplicate_requests, self.replays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{deliveries, sends};

    fn pair() -> (ReqRespClient, ReqRespServer) {
        (
            ReqRespClient::new(CabId::new(0), ReqRespConfig::default()),
            ReqRespServer::new(CabId::new(1), ReqRespConfig::default()),
        )
    }

    /// Ships the first Send in `actions` into `handler`, returning its
    /// output actions.
    fn ship(
        actions: &[Action],
        mut handler: impl FnMut(&Header, &[u8], &mut Vec<Action>),
    ) -> Vec<Action> {
        let mut out = Vec::new();
        for (h, p) in sends(actions) {
            handler(h, p, &mut out);
        }
        out
    }

    #[test]
    fn call_response_roundtrip() {
        let (mut client, mut server) = pair();
        let mut out = Vec::new();
        let tx = client.call(Time::ZERO, CabId::new(1), 5, 80, b"what time is it", &mut out);

        // Server receives the request and delivers it to mailbox 80.
        let srv_out = ship(&out, |h, p, o| server.on_packet(Time::ZERO, h, p, o));
        let req = deliveries(&srv_out);
        assert_eq!(req.len(), 1);
        assert_eq!(req[0].0, 80);
        assert_eq!(req[0].1.data(), b"what time is it");
        let client_cab = CabId::new(req[0].1.tag() as u16);

        // Application responds.
        let mut resp_out = Vec::new();
        assert!(server.respond(Time::ZERO, client_cab, tx, b"tea time", &mut resp_out));

        // Client matches the response to the call.
        let cli_out = ship(&resp_out, |h, p, o| client.on_packet(Time::ZERO, h, p, o));
        let d = deliveries(&cli_out);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 5, "response lands in the reply mailbox");
        assert_eq!(d[0].1.data(), b"tea time");
        assert!(cli_out.iter().any(|a| matches!(a, Action::Complete { msg_id } if *msg_id == tx)));
        assert_eq!(client.outstanding(), 0);
    }

    #[test]
    fn lost_request_is_retransmitted() {
        let (mut client, _server) = pair();
        let mut out = Vec::new();
        client.call(Time::ZERO, CabId::new(1), 5, 80, b"req", &mut out);
        let token = out
            .iter()
            .find_map(|a| match a {
                Action::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        // The request is lost; the timer fires.
        let mut out2 = Vec::new();
        client.on_timer(Time::from_millis(1), token, &mut out2);
        assert_eq!(sends(&out2).len(), 1, "request retransmitted");
        assert_eq!(client.stats().3, 1);
    }

    #[test]
    fn exhausted_retries_time_out() {
        let cfg = ReqRespConfig { max_attempts: 3, ..ReqRespConfig::default() };
        let mut client = ReqRespClient::new(CabId::new(0), cfg);
        let mut out = Vec::new();
        let tx = client.call(Time::ZERO, CabId::new(1), 5, 80, b"req", &mut out);
        for attempt in 1..=3u32 {
            let mut o = Vec::new();
            client.on_timer(
                Time::from_millis(attempt as u64),
                TimerToken(((tx as u64) << 32) | attempt as u64),
                &mut o,
            );
            if attempt == 3 {
                assert!(
                    o.iter().any(|a| matches!(a, Action::Error(TransportError::Timeout { msg_id }) if *msg_id == tx)),
                    "final attempt reports the timeout: {o:?}"
                );
            } else {
                assert_eq!(sends(&o).len(), 1);
            }
        }
        assert_eq!(client.outstanding(), 0);
        assert_eq!(client.stats().2, 1);
    }

    #[test]
    fn duplicate_request_replays_cached_response() {
        let (mut client, mut server) = pair();
        let mut out = Vec::new();
        let tx = client.call(Time::ZERO, CabId::new(1), 5, 80, b"inc counter", &mut out);
        let (req_h, req_p) = {
            let s = sends(&out);
            (*s[0].0, s[0].1.clone())
        };
        let mut o = Vec::new();
        server.on_packet(Time::ZERO, &req_h, &req_p, &mut o);
        let mut resp = Vec::new();
        server.respond(Time::ZERO, CabId::new(0), tx, b"done", &mut resp);

        // The response is lost; the client retransmits the request.
        let mut dup_out = Vec::new();
        server.on_packet(Time::from_millis(1), &req_h, &req_p, &mut dup_out);
        // The server replays the response without a second Deliver.
        assert_eq!(sends(&dup_out).len(), 1);
        assert!(deliveries(&dup_out).is_empty(), "at-most-once: the call is not re-executed");
        assert_eq!(server.stats(), (1, 1, 1));
    }

    #[test]
    fn duplicate_while_executing_is_dropped() {
        let (mut client, mut server) = pair();
        let mut out = Vec::new();
        client.call(Time::ZERO, CabId::new(1), 5, 80, b"slow call", &mut out);
        let (h, p) = {
            let s = sends(&out);
            (*s[0].0, s[0].1.clone())
        };
        let mut o1 = Vec::new();
        server.on_packet(Time::ZERO, &h, &p, &mut o1);
        let mut o2 = Vec::new();
        server.on_packet(Time::from_micros(10), &h, &p, &mut o2);
        assert!(o2.is_empty(), "no replay exists yet and no double delivery happens");
        assert_eq!(server.stats().1, 1);
    }

    #[test]
    fn stale_response_after_completion_is_ignored() {
        let (mut client, mut server) = pair();
        let mut out = Vec::new();
        let tx = client.call(Time::ZERO, CabId::new(1), 5, 80, b"q", &mut out);
        let (h, p) = {
            let s = sends(&out);
            (*s[0].0, s[0].1.clone())
        };
        let mut o = Vec::new();
        server.on_packet(Time::ZERO, &h, &p, &mut o);
        let mut resp = Vec::new();
        server.respond(Time::ZERO, CabId::new(0), tx, b"a", &mut resp);
        let (rh, rp) = {
            let s = sends(&resp);
            (*s[0].0, s[0].1.clone())
        };
        let mut first = Vec::new();
        client.on_packet(Time::ZERO, &rh, &rp, &mut first);
        assert_eq!(deliveries(&first).len(), 1);
        // A duplicated response arrives again.
        let mut second = Vec::new();
        client.on_packet(Time::ZERO, &rh, &rp, &mut second);
        assert!(second.is_empty());
    }

    #[test]
    fn response_cache_is_bounded() {
        let cfg = ReqRespConfig { response_cache: 2, ..ReqRespConfig::default() };
        let mut server = ReqRespServer::new(CabId::new(1), cfg);
        let mut client = ReqRespClient::new(CabId::new(0), cfg);
        for i in 0..3u32 {
            let mut out = Vec::new();
            let tx = client.call(Time::ZERO, CabId::new(1), 5, 80, &[i as u8], &mut out);
            let s = sends(&out);
            let mut o = Vec::new();
            server.on_packet(Time::ZERO, s[0].0, s[0].1, &mut o);
            let mut r = Vec::new();
            server.respond(Time::ZERO, CabId::new(0), tx, &[i as u8], &mut r);
        }
        assert_eq!(server.cache.len(), 2, "oldest cached response evicted");
    }

    #[test]
    fn oversize_request_is_an_error() {
        let (mut client, _) = pair();
        let mut out = Vec::new();
        client.call(Time::ZERO, CabId::new(1), 5, 80, &vec![0u8; 4096], &mut out);
        assert!(matches!(out[0], Action::Error(TransportError::TooLarge { .. })));
    }

    #[test]
    fn respond_without_pending_request_is_refused() {
        let (_, mut server) = pair();
        let mut out = Vec::new();
        assert!(!server.respond(Time::ZERO, CabId::new(0), 99, b"?", &mut out));
        assert!(out.is_empty());
    }
}
