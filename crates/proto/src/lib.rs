//! # nectar-proto — the Nectar communication protocols
//!
//! The CAB software between the fiber and the application (paper §6.2):
//!
//! * [`header`] — the byte-exact transport header with the hardware
//!   Fletcher-16 checksum.
//! * [`datalink`] — source routes, the §4.2 HUB command-packet
//!   builders (circuit, packet-switched, multicast), and the
//!   connection cache.
//! * [`transport`] — the three transports of §6.2.2: unreliable
//!   [`datagram`](transport::datagram), sliding-window
//!   [`bytestream`](transport::bytestream), and
//!   [`reqresp`](transport::reqresp) RPC. All are pure state machines
//!   emitting [`Action`](transport::Action)s; the CAB model in
//!   `nectar-core` executes them with the proper time costs.
//! * [`pipeline`] — the §6.2.2 packet-pipeline planner for large
//!   node-to-node messages.
//! * [`inet`] — the §6.2.2 future work, implemented: IPv4
//!   encapsulation over Nectar with TCP/UDP/VMTP protocol mappings.
//!
//! # Examples
//!
//! Building the paper's Fig. 7 circuit-open command packet:
//!
//! ```
//! use nectar_proto::datalink::{Hop, Route};
//! use nectar_hub::id::{HubId, PortId};
//!
//! let route = Route::new(vec![
//!     Hop { hub: HubId::new(2), out: PortId::new(8) },
//!     Hop { hub: HubId::new(1), out: PortId::new(8) },
//! ]);
//! let items = route.circuit_open_items();
//! assert_eq!(items[0].to_string(), "cmd[open with retry HUB2 P8]");
//! assert_eq!(items[1].to_string(), "cmd[open with retry and reply HUB1 P8]");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datalink;
pub mod header;
pub mod inet;
pub mod pipeline;
pub mod transport;

/// The most frequently used names, for glob import.
pub mod prelude {
    pub use crate::datalink::{ConnectionCache, DatalinkConfig, Hop, MulticastRoute, Route};
    pub use crate::header::{
        DecodeError, Header, MailboxAddr, PacketKind, HEADER_BYTES, MAX_FRAGMENT_PAYLOAD,
    };
    pub use crate::inet::{AddressMap, IpHeader, IpProto};
    pub use crate::pipeline::PipelineModel;
    pub use crate::transport::bytestream::{ByteStream, ByteStreamConfig, ByteStreamStats};
    pub use crate::transport::datagram::Datagram;
    pub use crate::transport::reqresp::{ReqRespClient, ReqRespConfig, ReqRespServer};
    pub use crate::transport::{Action, TimerToken, TransportError};
}
