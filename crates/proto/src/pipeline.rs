//! The packet-pipeline planner for large node-to-node messages.
//!
//! "When sending large messages between nodes, it is important to
//! overlap packet transfers over the Nectar-net and over the VME bus at
//! each end, in order to reduce latency and increase throughput. The
//! CABs at the sender and receiver sides are well suited for setting up
//! this 'packet pipeline': they can select an optimal packet size,
//! synchronize the various DMAs, and manage the buffers" (§6.2.2).
//!
//! This module is that selection logic: an analytic model of the
//! three-stage pipeline (sender VME → fiber → receiver VME) that
//! predicts transfer time for a candidate packet size and picks the
//! best one. Experiment E11 compares its predictions against the full
//! simulation.

use nectar_sim::time::Dur;
use nectar_sim::units::Bandwidth;

/// The three-stage pipeline model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineModel {
    /// VME bandwidth at each end (10 MB/s in the prototype).
    pub vme_bw: Bandwidth,
    /// Fiber bandwidth (100 Mbit/s).
    pub fiber_bw: Bandwidth,
    /// Fixed per-packet cost on the bottleneck stage (DMA setup,
    /// datalink bookkeeping).
    pub per_packet_overhead: Dur,
    /// One-time setup cost (route open, first DMA programming).
    pub setup: Dur,
}

impl PipelineModel {
    /// The prototype's constants with a 2.5 µs per-packet overhead
    /// (DMA setup + datalink bookkeeping from
    /// [`CabTimings`](nectar_cab::timings::CabTimings)).
    pub fn prototype() -> PipelineModel {
        PipelineModel {
            vme_bw: Bandwidth::from_mbyte_per_sec(10),
            fiber_bw: Bandwidth::from_mbit_per_sec(100),
            per_packet_overhead: Dur::from_nanos(2_500),
            setup: Dur::from_micros(10),
        }
    }

    /// Time one stage spends on one packet of `size` bytes.
    fn stage_time(&self, bw: Bandwidth, size: usize) -> Dur {
        bw.transfer_time(size) + self.per_packet_overhead
    }

    /// Predicted end-to-end time for `message` bytes moved in packets
    /// of `packet` bytes with full overlap: the first packet flows
    /// through all three stages, then the pipeline advances at the
    /// bottleneck stage's pace.
    ///
    /// # Panics
    ///
    /// Panics if `message` or `packet` is zero.
    pub fn transfer_time(&self, message: usize, packet: usize) -> Dur {
        assert!(message > 0 && packet > 0, "sizes must be positive");
        let packets = message.div_ceil(packet) as u64;
        let last = message - (packets as usize - 1) * packet.min(message);
        let vme = self.stage_time(self.vme_bw, packet);
        let fiber = self.stage_time(self.fiber_bw, packet);
        let bottleneck = vme.max(fiber);
        // First packet fills the pipeline; the rest arrive at the
        // bottleneck rate; the final (possibly short) packet drains.
        let fill = vme + fiber;
        let steady = bottleneck * (packets.saturating_sub(1));
        let drain = self.stage_time(self.vme_bw, last);
        self.setup + fill + steady + drain
    }

    /// Time with *no* overlap: the whole message crosses the sender
    /// VME, then the fiber, then the receiver VME (what a node without
    /// a CAB-managed pipeline would get).
    pub fn store_and_forward_time(&self, message: usize) -> Dur {
        assert!(message > 0, "size must be positive");
        self.setup
            + self.stage_time(self.vme_bw, message)
            + self.stage_time(self.fiber_bw, message)
            + self.stage_time(self.vme_bw, message)
    }

    /// Sweeps candidate packet sizes (powers of two from 128 B to
    /// 64 KB, clamped to the message) and returns `(best_size,
    /// predicted_time)`.
    pub fn optimal_packet_size(&self, message: usize) -> (usize, Dur) {
        assert!(message > 0, "size must be positive");
        let mut best = (message, self.transfer_time(message, message));
        let mut size = 128usize;
        while size <= 65_536 {
            let candidate = size.min(message);
            let t = self.transfer_time(message, candidate);
            if t < best.1 {
                best = (candidate, t);
            }
            size *= 2;
        }
        best
    }

    /// Steady-state throughput for `message` bytes at packet size
    /// `packet`.
    pub fn throughput(&self, message: usize, packet: usize) -> Bandwidth {
        let t = self.transfer_time(message, packet);
        let bps = (message as u128 * 8 * 1_000_000_000 / t.nanos().max(1) as u128) as u64;
        Bandwidth::from_bits_per_sec(bps.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_beats_store_and_forward_for_large_messages() {
        let m = PipelineModel::prototype();
        let message = 1 << 20; // 1 MB
        let (size, piped) = m.optimal_packet_size(message);
        let sf = m.store_and_forward_time(message);
        assert!(
            piped.nanos() * 2 < sf.nanos(),
            "overlap should cut large-message latency roughly in half \
             (piped={piped}, store-and-forward={sf}, packet={size})"
        );
    }

    #[test]
    fn vme_is_the_bottleneck_stage() {
        // At 10 MB/s VME vs 12.5 MB/s fiber, throughput approaches VME rate.
        let m = PipelineModel::prototype();
        let tp = m.throughput(1 << 20, 8192);
        let mbs = tp.as_mbyte_per_sec_f64();
        assert!(
            mbs > 8.0 && mbs <= 10.0,
            "throughput {mbs:.1} MB/s should approach the 10 MB/s VME"
        );
    }

    #[test]
    fn tiny_packets_lose_to_overhead() {
        let m = PipelineModel::prototype();
        let small = m.transfer_time(1 << 20, 128);
        let right = m.transfer_time(1 << 20, 8192);
        assert!(small > right, "128 B packets pay 8192 overheads");
    }

    #[test]
    fn huge_packets_lose_overlap() {
        let m = PipelineModel::prototype();
        let whole = m.transfer_time(1 << 20, 1 << 20);
        let (best_size, best) = m.optimal_packet_size(1 << 20);
        assert!(whole > best);
        assert!(best_size < 1 << 20, "optimal size is an interior point");
        assert!(best_size >= 1024, "but not absurdly small");
    }

    #[test]
    fn single_packet_message_degenerates_gracefully() {
        let m = PipelineModel::prototype();
        let t = m.transfer_time(100, 1024);
        assert!(t > Dur::ZERO);
        let (size, _) = m.optimal_packet_size(100);
        assert!(size <= 128, "messages smaller than a packet use one packet (got {size})");
    }

    #[test]
    #[should_panic]
    fn zero_message_rejected() {
        PipelineModel::prototype().transfer_time(0, 1024);
    }
}
