//! Transport-protocol wire headers.
//!
//! Every Nectar transport packet starts with a fixed 32-byte header
//! carrying addressing (CAB + mailbox), fragmentation, sequencing, and
//! a Fletcher-16 checksum computed by the CAB's hardware unit over the
//! header and payload. The encoding is byte-exact so corruption
//! injection in tests exercises the same code a real receiver runs.

use core::fmt;
use nectar_cab::board::CabId;
use nectar_cab::checksum::fletcher16;

/// Size of the fixed transport header on the wire.
pub const HEADER_BYTES: usize = 32;

/// Largest payload a single packet may carry: the HUB input queue is
/// 1 KB and bounds packet-switched packets, so the default transports
/// use `1024 - HEADER_BYTES - 2` (SOP/EOP framing) per fragment.
pub const MAX_FRAGMENT_PAYLOAD: usize = 1024 - HEADER_BYTES - 2;

/// What kind of transport packet this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Unreliable datagram (§6.2.2, "direct interface to the datalink").
    Datagram,
    /// Byte-stream data fragment.
    Data,
    /// Byte-stream cumulative acknowledgement.
    Ack,
    /// Request of the request-response protocol.
    Request,
    /// Response of the request-response protocol.
    Response,
}

impl PacketKind {
    const ALL: [PacketKind; 5] = [
        PacketKind::Datagram,
        PacketKind::Data,
        PacketKind::Ack,
        PacketKind::Request,
        PacketKind::Response,
    ];

    fn code(self) -> u8 {
        match self {
            PacketKind::Datagram => 0,
            PacketKind::Data => 1,
            PacketKind::Ack => 2,
            PacketKind::Request => 3,
            PacketKind::Response => 4,
        }
    }

    fn from_code(code: u8) -> Option<PacketKind> {
        PacketKind::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PacketKind::Datagram => "dgram",
            PacketKind::Data => "data",
            PacketKind::Ack => "ack",
            PacketKind::Request => "req",
            PacketKind::Response => "resp",
        };
        f.write_str(s)
    }
}

/// A mailbox address on a CAB (the transport-level "port").
pub type MailboxAddr = u16;

/// The fixed transport header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Header {
    /// Packet kind.
    pub kind: PacketKind,
    /// Sending CAB.
    pub src_cab: CabId,
    /// Destination CAB.
    pub dst_cab: CabId,
    /// Sending mailbox.
    pub src_mailbox: MailboxAddr,
    /// Destination mailbox.
    pub dst_mailbox: MailboxAddr,
    /// Message id (request-response transaction id for RPC packets).
    pub msg_id: u32,
    /// Fragment index within the message.
    pub frag_index: u16,
    /// Total fragments in the message.
    pub frag_count: u16,
    /// Sequence number (byte-stream).
    pub seq: u32,
    /// Cumulative acknowledgement (byte-stream).
    pub ack: u32,
    /// Receiver window in packets (byte-stream flow control).
    pub window: u16,
    /// Payload length in bytes.
    pub payload_len: u16,
}

/// Why a packet failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than [`HEADER_BYTES`] bytes.
    Truncated {
        /// Bytes actually present.
        have: usize,
    },
    /// Unknown packet-kind code.
    BadKind {
        /// Offending code byte.
        code: u8,
    },
    /// Header `payload_len` disagrees with the bytes present.
    LengthMismatch {
        /// Length claimed by the header.
        claimed: usize,
        /// Payload bytes present.
        have: usize,
    },
    /// Checksum mismatch: the packet was corrupted in flight.
    Checksum {
        /// Checksum carried by the packet.
        carried: u16,
        /// Checksum computed over the received bytes.
        computed: u16,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { have } => write!(f, "truncated packet ({have} bytes)"),
            DecodeError::BadKind { code } => write!(f, "unknown packet kind {code}"),
            DecodeError::LengthMismatch { claimed, have } => {
                write!(f, "length mismatch: header claims {claimed}, got {have}")
            }
            DecodeError::Checksum { carried, computed } => {
                write!(f, "checksum mismatch: carried {carried:#06x}, computed {computed:#06x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl Header {
    /// Encodes the header and payload into one wire buffer, computing
    /// the hardware checksum over everything.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len()` disagrees with `self.payload_len`.
    pub fn encode_with(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
        self.encode_into(payload, &mut buf);
        buf
    }

    /// Encodes into a caller-supplied buffer (cleared first), so pooled
    /// buffers can be reused across packets without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len()` disagrees with `self.payload_len`.
    pub fn encode_into(&self, payload: &[u8], buf: &mut Vec<u8>) {
        assert_eq!(payload.len(), self.payload_len as usize, "payload_len must match payload");
        buf.clear();
        buf.reserve(HEADER_BYTES + payload.len());
        buf.push(self.kind.code());
        buf.push(0); // reserved flags
        buf.extend_from_slice(&self.src_cab.raw().to_be_bytes());
        buf.extend_from_slice(&self.dst_cab.raw().to_be_bytes());
        buf.extend_from_slice(&self.src_mailbox.to_be_bytes());
        buf.extend_from_slice(&self.dst_mailbox.to_be_bytes());
        buf.extend_from_slice(&self.msg_id.to_be_bytes());
        buf.extend_from_slice(&self.frag_index.to_be_bytes());
        buf.extend_from_slice(&self.frag_count.to_be_bytes());
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.ack.to_be_bytes());
        buf.extend_from_slice(&self.window.to_be_bytes());
        buf.extend_from_slice(&self.payload_len.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(payload);
        let sum = fletcher16(buf);
        buf[30..32].copy_from_slice(&sum.to_be_bytes());
    }

    /// Decodes a wire buffer into header and payload, verifying length
    /// and checksum — the checks a receiving CAB performs in hardware.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`].
    pub fn decode(bytes: &[u8]) -> Result<(Header, &[u8]), DecodeError> {
        if bytes.len() < HEADER_BYTES {
            return Err(DecodeError::Truncated { have: bytes.len() });
        }
        let kind =
            PacketKind::from_code(bytes[0]).ok_or(DecodeError::BadKind { code: bytes[0] })?;
        let u16at = |i: usize| u16::from_be_bytes([bytes[i], bytes[i + 1]]);
        let u32at =
            |i: usize| u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        let payload_len = u16at(28) as usize;
        let have = bytes.len() - HEADER_BYTES;
        if payload_len != have {
            return Err(DecodeError::LengthMismatch { claimed: payload_len, have });
        }
        let carried = u16at(30);
        let mut check = bytes.to_vec();
        check[30] = 0;
        check[31] = 0;
        let computed = fletcher16(&check);
        if carried != computed {
            return Err(DecodeError::Checksum { carried, computed });
        }
        let header = Header {
            kind,
            src_cab: CabId::new(u16at(2)),
            dst_cab: CabId::new(u16at(4)),
            src_mailbox: u16at(6),
            dst_mailbox: u16at(8),
            msg_id: u32at(10),
            frag_index: u16at(14),
            frag_count: u16at(16),
            seq: u32at(18),
            ack: u32at(22),
            window: u16at(26),
            payload_len: payload_len as u16,
        };
        Ok((header, &bytes[HEADER_BYTES..]))
    }

    /// A minimal header template; callers fill in the rest.
    pub fn new(kind: PacketKind, src_cab: CabId, dst_cab: CabId) -> Header {
        Header {
            kind,
            src_cab,
            dst_cab,
            src_mailbox: 0,
            dst_mailbox: 0,
            msg_id: 0,
            frag_index: 0,
            frag_count: 1,
            seq: 0,
            ack: 0,
            window: 0,
            payload_len: 0,
        }
    }
}

impl fmt::Display for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{} msg={} frag={}/{} seq={} ack={} ({} B)",
            self.kind,
            self.src_cab,
            self.src_mailbox,
            self.dst_cab,
            self.dst_mailbox,
            self.msg_id,
            self.frag_index,
            self.frag_count,
            self.seq,
            self.ack,
            self.payload_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: PacketKind, payload: &[u8]) -> Header {
        Header {
            kind,
            src_cab: CabId::new(3),
            dst_cab: CabId::new(1),
            src_mailbox: 7,
            dst_mailbox: 9,
            msg_id: 0xDEAD_BEEF,
            frag_index: 2,
            frag_count: 5,
            seq: 42,
            ack: 40,
            window: 8,
            payload_len: payload.len() as u16,
        }
    }

    #[test]
    fn roundtrip_all_kinds() {
        let payload = b"hello nectar";
        for kind in PacketKind::ALL {
            let h = sample(kind, payload);
            let wire = h.encode_with(payload);
            assert_eq!(wire.len(), HEADER_BYTES + payload.len());
            let (back, body) = Header::decode(&wire).unwrap();
            assert_eq!(back, h);
            assert_eq!(body, payload);
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let h = sample(PacketKind::Ack, &[]);
        let wire = h.encode_with(&[]);
        let (back, body) = Header::decode(&wire).unwrap();
        assert_eq!(back.payload_len, 0);
        assert!(body.is_empty());
    }

    #[test]
    fn corruption_is_detected_anywhere() {
        let payload = vec![7u8; 256];
        let wire = sample(PacketKind::Data, &payload).encode_with(&payload);
        for idx in [0usize, 5, 14, HEADER_BYTES, wire.len() - 1] {
            let mut bad = wire.clone();
            bad[idx] ^= 0x40;
            assert!(
                Header::decode(&bad).is_err(),
                "corruption at byte {idx} must not decode cleanly"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let payload = vec![1u8; 64];
        let wire = sample(PacketKind::Data, &payload).encode_with(&payload);
        assert!(matches!(Header::decode(&wire[..10]), Err(DecodeError::Truncated { have: 10 })));
        assert!(matches!(
            Header::decode(&wire[..wire.len() - 1]),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        let payload = [];
        let mut wire = sample(PacketKind::Ack, &payload).encode_with(&payload);
        wire[0] = 99;
        assert!(matches!(Header::decode(&wire), Err(DecodeError::BadKind { code: 99 })));
    }

    #[test]
    #[should_panic]
    fn payload_len_must_match() {
        let h = sample(PacketKind::Data, b"12345");
        let _ = h.encode_with(b"1234");
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode_with() {
        let payload = vec![3u8; 128];
        let h = sample(PacketKind::Data, &payload);
        let fresh = h.encode_with(&payload);
        let mut reused = vec![0xFFu8; 500]; // stale contents must not leak in
        h.encode_into(&payload, &mut reused);
        assert_eq!(reused, fresh);
        let (back, body) = Header::decode(&reused).unwrap();
        assert_eq!(back, h);
        assert_eq!(body, &payload[..]);
    }

    #[test]
    fn max_fragment_fits_hub_queue() {
        // Header + max payload + SOP/EOP framing fills exactly 1 KB.
        assert_eq!(HEADER_BYTES + MAX_FRAGMENT_PAYLOAD + 2, 1024);
    }
}
