//! The datalink layer: routes, HUB command packets, connection cache.
//!
//! "The datalink protocol transfers data packets between CABs using HUB
//! commands, manages HUB connections, and recovers from framing errors
//! and lost HUB commands" (§6.2.1). This module holds the pure parts —
//! route descriptions and the §4.2 command-packet builders — plus the
//! connection cache that lets repeated sends to the same destination
//! skip route setup. The timed send/receive logic runs in the CAB model
//! of `nectar-core`.

use core::fmt;
use nectar_cab::board::CabId;
use nectar_hub::command::Command;
use nectar_hub::id::{HubId, PortId};
use nectar_hub::item::{Item, Packet};
use nectar_sim::time::{Dur, Time};
use std::collections::HashMap;

/// One hop of a route: the output port to open on a HUB.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Hop {
    /// The HUB the open command is addressed to.
    pub hub: HubId,
    /// The output port to connect on that HUB.
    pub out: PortId,
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.hub, self.out)
    }
}

/// A source route from one CAB to another: the ordered output ports to
/// open at each HUB along the way. Nectar routes are source-routed —
/// the sending CAB computes the whole path and encodes it as a command
/// packet (§4.2.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Route {
    hops: Vec<Hop>,
}

impl Route {
    /// Builds a route from its hops, in CAB-to-destination order.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty: a route traverses at least one HUB.
    pub fn new(hops: Vec<Hop>) -> Route {
        assert!(!hops.is_empty(), "a route traverses at least one HUB");
        Route { hops }
    }

    /// The hops in order.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Number of HUBs traversed.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Routes are never empty; this exists for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The command packet that establishes this circuit: `open with
    /// retry` at every hop, with `and reply` on the last so the sender
    /// learns the route is up (§4.2.1's exact recipe).
    pub fn circuit_open_items(&self) -> Vec<Item> {
        self.open_items(false)
    }

    /// The packet-switched prologue: `test open with retry` at every
    /// hop, so each connection waits for the downstream input queue to
    /// be ready (§4.2.3's exact recipe).
    pub fn test_open_items(&self) -> Vec<Item> {
        self.open_items(true)
    }

    fn open_items(&self, test: bool) -> Vec<Item> {
        let last = self.hops.len() - 1;
        self.hops
            .iter()
            .enumerate()
            .map(|(i, hop)| {
                // Packet switching needs no reply: the data follows the
                // commands immediately and flow control does the pacing.
                let reply = !test && i == last;
                Command::open(test, true, reply, hop.hub, hop.out).into()
            })
            .collect()
    }

    /// A full packet-switched transmission: test-opens, the data
    /// packet, and the trailing `close all` (§4.2.3).
    ///
    /// # Panics
    ///
    /// Panics if the packet exceeds the 1 KB input-queue limit — larger
    /// packets must use circuit switching (§4.2.3).
    pub fn packet_switched_items(&self, packet: Packet, queue_capacity: usize) -> Vec<Item> {
        assert!(
            packet.wire_bytes() <= queue_capacity,
            "packet-switched packets must fit the {queue_capacity}-byte input queue"
        );
        let mut items = self.test_open_items();
        items.push(packet.into());
        items.push(Item::CloseAll);
        items
    }

    /// Individual `close` commands in reverse hop order — the §4.2.1
    /// alternative to `close all`.
    pub fn close_items(&self) -> Vec<Item> {
        self.hops
            .iter()
            .rev()
            .map(|hop| Command::user(nectar_hub::command::UserOp::Close, hop.hub, hop.out).into())
            .collect()
    }

    /// Replies expected when the circuit-open packet succeeds.
    pub fn expected_replies(&self) -> usize {
        1
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            hop.fmt(f)?;
        }
        Ok(())
    }
}

/// A multicast route: a sequence of opens walked in command-packet
/// order, with `and reply` set on each branch's final hop. The §4.2.2
/// example (CAB2 to CAB4 and CAB5 through HUB1/HUB4/HUB3) is the
/// canonical instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MulticastRoute {
    opens: Vec<(Hop, bool)>,
}

impl MulticastRoute {
    /// Builds a multicast route from `(hop, is_branch_terminal)` pairs
    /// in command-packet order.
    ///
    /// # Panics
    ///
    /// Panics if `opens` is empty or no hop is terminal (at least one
    /// destination must exist).
    pub fn new(opens: Vec<(Hop, bool)>) -> MulticastRoute {
        assert!(!opens.is_empty(), "multicast route cannot be empty");
        assert!(opens.iter().any(|(_, t)| *t), "multicast route needs at least one destination");
        MulticastRoute { opens }
    }

    /// The circuit-switched open sequence (§4.2.2): `open with retry`,
    /// with `and reply` on each terminal hop.
    pub fn circuit_open_items(&self) -> Vec<Item> {
        self.opens
            .iter()
            .map(|&(hop, terminal)| Command::open(false, true, terminal, hop.hub, hop.out).into())
            .collect()
    }

    /// The packet-switched variant (§4.2.4): all `test open with
    /// retry`, then data, then `close all`.
    pub fn packet_switched_items(&self, packet: Packet, queue_capacity: usize) -> Vec<Item> {
        assert!(
            packet.wire_bytes() <= queue_capacity,
            "packet-switched packets must fit the {queue_capacity}-byte input queue"
        );
        let mut items: Vec<Item> = self
            .opens
            .iter()
            .map(|&(hop, _)| Command::open(true, true, false, hop.hub, hop.out).into())
            .collect();
        items.push(packet.into());
        items.push(Item::CloseAll);
        items
    }

    /// Replies the sender waits for: one per terminal hop (§4.2.2,
    /// "after receiving replies to both of the open with retry and
    /// reply commands, CAB2 sends the data packet").
    pub fn expected_replies(&self) -> usize {
        self.opens.iter().filter(|(_, t)| *t).count()
    }
}

/// Statistics of a [`ConnectionCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an open circuit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Circuits evicted to make room.
    pub evictions: u64,
}

/// An LRU cache of open circuits, keyed by destination CAB.
///
/// Keeping a circuit open lets the next message to the same destination
/// skip the open/reply round trip entirely — the ablation in DESIGN.md
/// §5 measures exactly this.
#[derive(Clone, Debug)]
pub struct ConnectionCache {
    capacity: usize,
    entries: HashMap<CabId, (Route, Time)>,
    stats: CacheStats,
}

impl ConnectionCache {
    /// A cache holding at most `capacity` open circuits (0 disables
    /// caching entirely — every send re-opens its route).
    pub fn new(capacity: usize) -> ConnectionCache {
        ConnectionCache { capacity, entries: HashMap::new(), stats: CacheStats::default() }
    }

    /// Looks up an open circuit to `dst`, refreshing its LRU stamp.
    pub fn lookup(&mut self, dst: CabId, now: Time) -> Option<&Route> {
        match self.entries.get_mut(&dst) {
            Some((_route, stamp)) => {
                *stamp = now;
                self.stats.hits += 1;
                Some(&self.entries[&dst].0)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records a circuit as open. Returns the destination whose circuit
    /// must be *closed* (its `close all` sent) if the cache evicted one.
    pub fn insert(&mut self, dst: CabId, route: Route, now: Time) -> Option<(CabId, Route)> {
        if self.capacity == 0 {
            return None;
        }
        let mut evicted = None;
        if !self.entries.contains_key(&dst) && self.entries.len() >= self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
                .expect("cache is non-empty");
            let (route, _) = self.entries.remove(&oldest).expect("key exists");
            self.stats.evictions += 1;
            evicted = Some((oldest, route));
        }
        self.entries.insert(dst, (route, now));
        evicted
    }

    /// Removes a circuit (e.g. after sending its `close all`).
    pub fn remove(&mut self, dst: CabId) -> Option<Route> {
        self.entries.remove(&dst).map(|(r, _)| r)
    }

    /// Open circuits currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no circuits are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Datalink-level timeouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatalinkConfig {
    /// How long to wait for the open reply before re-probing the route
    /// ("if CAB3 does not receive a reply soon enough...", §4.2.1).
    pub open_timeout: Dur,
    /// Open attempts before reporting the route unreachable.
    pub max_open_attempts: u32,
}

impl Default for DatalinkConfig {
    fn default() -> DatalinkConfig {
        DatalinkConfig { open_timeout: Dur::from_micros(100), max_open_attempts: 5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nectar_hub::command::{Op, UserOp};

    fn hop(hub: u8, port: u8) -> Hop {
        Hop { hub: HubId::new(hub), out: PortId::new(port) }
    }

    /// The paper's §4.2.1 example: CAB3 to CAB1 through HUB2 and HUB1.
    fn fig7_route() -> Route {
        Route::new(vec![hop(2, 8), hop(1, 8)])
    }

    fn as_command(item: &Item) -> Command {
        match item {
            Item::Command(c) => *c,
            other => panic!("expected command, got {other}"),
        }
    }

    #[test]
    fn circuit_open_matches_paper_section_421() {
        let items = fig7_route().circuit_open_items();
        assert_eq!(items.len(), 2);
        assert_eq!(as_command(&items[0]).to_string(), "open with retry HUB2 P8");
        assert_eq!(as_command(&items[1]).to_string(), "open with retry and reply HUB1 P8");
    }

    #[test]
    fn packet_switched_matches_paper_section_423() {
        let packet = Packet::new(1, vec![0u8; 100]);
        let items = fig7_route().packet_switched_items(packet, 1024);
        let strings: Vec<String> = items.iter().map(|i| i.to_string()).collect();
        assert_eq!(strings[0], "cmd[test open with retry HUB2 P8]");
        assert_eq!(strings[1], "cmd[test open with retry HUB1 P8]");
        assert_eq!(strings[2], "packet#1 (100 B)");
        assert_eq!(strings[3], "close all");
    }

    #[test]
    fn multicast_matches_paper_section_422() {
        // "open with retry HUB1 P6 / open with retry and reply HUB4 P5 /
        //  open with retry HUB4 P3 / open with retry and reply HUB3 P4"
        let mc = MulticastRoute::new(vec![
            (hop(1, 6), false),
            (hop(4, 5), true),
            (hop(4, 3), false),
            (hop(3, 4), true),
        ]);
        let strings: Vec<String> = mc.circuit_open_items().iter().map(|i| i.to_string()).collect();
        assert_eq!(
            strings,
            vec![
                "cmd[open with retry HUB1 P6]",
                "cmd[open with retry and reply HUB4 P5]",
                "cmd[open with retry HUB4 P3]",
                "cmd[open with retry and reply HUB3 P4]",
            ]
        );
        assert_eq!(mc.expected_replies(), 2);
    }

    #[test]
    fn close_items_reverse_order() {
        let items = fig7_route().close_items();
        let cmds: Vec<Command> = items.iter().map(as_command).collect();
        assert_eq!(cmds[0].hub, HubId::new(1), "connections closed in reverse order (§4.2.1)");
        assert_eq!(cmds[1].hub, HubId::new(2));
        assert!(cmds.iter().all(|c| c.op == Op::User(UserOp::Close)));
    }

    #[test]
    #[should_panic]
    fn oversized_packet_switching_rejected() {
        let packet = Packet::new(1, vec![0u8; 2048]);
        let _ = fig7_route().packet_switched_items(packet, 1024);
    }

    #[test]
    #[should_panic]
    fn empty_route_rejected() {
        let _ = Route::new(vec![]);
    }

    #[test]
    fn cache_hits_and_lru_eviction() {
        let mut cache = ConnectionCache::new(2);
        let r = |n| Route::new(vec![hop(n, 1)]);
        assert!(cache.lookup(CabId::new(1), Time::ZERO).is_none());
        cache.insert(CabId::new(1), r(1), Time::from_micros(1));
        cache.insert(CabId::new(2), r(2), Time::from_micros(2));
        // Touch CAB1 so CAB2 is the LRU victim.
        assert!(cache.lookup(CabId::new(1), Time::from_micros(3)).is_some());
        let evicted = cache.insert(CabId::new(3), r(3), Time::from_micros(4));
        assert_eq!(evicted.map(|(d, _)| d), Some(CabId::new(2)));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ConnectionCache::new(0);
        cache.insert(CabId::new(1), fig7_route(), Time::ZERO);
        assert!(cache.lookup(CabId::new(1), Time::ZERO).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn remove_after_close() {
        let mut cache = ConnectionCache::new(4);
        cache.insert(CabId::new(1), fig7_route(), Time::ZERO);
        assert!(cache.remove(CabId::new(1)).is_some());
        assert!(cache.remove(CabId::new(1)).is_none());
    }

    #[test]
    fn route_display() {
        assert_eq!(fig7_route().to_string(), "HUB2:P8 -> HUB1:P8");
    }
}
