//! Property-based tests for the protocol layer: codecs are total and
//! injective, fragmentation roundtrips, and the byte-stream delivers
//! exactly-once in-order under arbitrary loss patterns.

use nectar_cab::board::CabId;
use nectar_proto::header::{Header, PacketKind};
use nectar_proto::inet::{IpHeader, IpProto};
use nectar_proto::transport::bytestream::{ByteStream, ByteStreamConfig};
use nectar_proto::transport::frag::{fragment, fragment_count, Reassembler, ReassemblyOutcome};
use nectar_proto::transport::{Action, TimerToken};
use nectar_sim::time::{Dur, Time};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        Just(PacketKind::Datagram),
        Just(PacketKind::Data),
        Just(PacketKind::Ack),
        Just(PacketKind::Request),
        Just(PacketKind::Response),
    ]
}

proptest! {
    #[test]
    fn header_roundtrips_for_arbitrary_fields(
        kind in arb_kind(),
        src in any::<u16>(),
        dst in any::<u16>(),
        src_mb in any::<u16>(),
        dst_mb in any::<u16>(),
        msg_id in any::<u32>(),
        frag in any::<u16>(),
        count in 1u16..,
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..990),
    ) {
        let h = Header {
            kind,
            src_cab: CabId::new(src),
            dst_cab: CabId::new(dst),
            src_mailbox: src_mb,
            dst_mailbox: dst_mb,
            msg_id,
            frag_index: frag,
            frag_count: count,
            seq,
            ack,
            window,
            payload_len: payload.len() as u16,
        };
        let wire = h.encode_with(&payload);
        let (back, body) = Header::decode(&wire).unwrap();
        prop_assert_eq!(back, h);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn header_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..1200)) {
        let _ = Header::decode(&bytes); // must never panic
    }

    #[test]
    fn fragmentation_preserves_bytes(
        data in prop::collection::vec(any::<u8>(), 0..20_000),
        max in 1usize..2000,
    ) {
        let frags = fragment(&data, max);
        prop_assert_eq!(frags.len(), fragment_count(data.len(), max));
        let glued: Vec<u8> = frags.iter().flat_map(|f| f.iter().copied()).collect();
        prop_assert_eq!(glued, data.clone());
        for (i, f) in frags.iter().enumerate() {
            prop_assert!(f.len() <= max);
            // Only the last fragment may be short (unless data is empty).
            if !data.is_empty() && i + 1 < frags.len() {
                prop_assert_eq!(f.len(), max);
            }
        }
    }

    #[test]
    fn reassembler_rebuilds_in_order_streams(
        data in prop::collection::vec(any::<u8>(), 1..8000),
        max in 16usize..990,
        msg_id in any::<u32>(),
    ) {
        let frags = fragment(&data, max);
        let mut r = Reassembler::new();
        let n = frags.len() as u16;
        for (i, f) in frags.iter().enumerate() {
            match r.push(msg_id, i as u16, n, f) {
                ReassemblyOutcome::Complete(buf) => {
                    prop_assert_eq!(i as u16, n - 1);
                    prop_assert_eq!(buf, data.clone());
                }
                ReassemblyOutcome::Incomplete => prop_assert!((i as u16) < n - 1),
                ReassemblyOutcome::Mismatch => prop_assert!(false, "mismatch on clean stream"),
            }
        }
    }

    #[test]
    fn ip_header_roundtrips(
        src in any::<u32>(),
        dst in any::<u32>(),
        ttl in 1u8..,
        ident in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..1400),
    ) {
        for proto in [IpProto::Udp, IpProto::Tcp, IpProto::Vmtp] {
            let h = IpHeader {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                proto,
                ttl,
                ident,
                payload_len: payload.len() as u16,
            };
            let wire = h.encode_with(&payload);
            let (back, body) = IpHeader::decode(&wire).unwrap();
            prop_assert_eq!(back, h);
            prop_assert_eq!(body, &payload[..]);
        }
    }

    #[test]
    fn ip_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..100)) {
        let _ = IpHeader::decode(&bytes);
    }

    // ----------------------------------------------------------------
    // Byte-stream: exactly-once, in-order, intact under arbitrary loss.
    // ----------------------------------------------------------------

    #[test]
    fn bytestream_survives_arbitrary_loss_patterns(
        messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..3000), 1..4),
        drops in prop::collection::vec(any::<bool>(), 0..60),
        window in 1u16..10,
    ) {
        let cfg = ByteStreamConfig { window, rto: Dur::from_micros(200), ..Default::default() };
        let mut a = ByteStream::new(CabId::new(0), CabId::new(1), cfg);
        let mut b = ByteStream::new(CabId::new(1), CabId::new(0), cfg);
        let mut now = Time::ZERO;
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        let mut timers: Vec<(Time, usize, TimerToken)> = Vec::new();
        let mut send_idx = 0usize;

        let mut pending: std::collections::VecDeque<(usize, Action)> = Default::default();
        for m in &messages {
            let mut out = Vec::new();
            a.send_message(now, 1, 2, m, &mut out);
            pending.extend(out.into_iter().map(|x| (0usize, x)));
        }
        // Event loop: process actions, dropping sends per the pattern;
        // fire timers when the action queue drains.
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 50_000, "protocol did not converge");
            if let Some((from, action)) = pending.pop_front() {
                match action {
                    Action::Send { header, payload, .. } => {
                        let dropped = drops.get(send_idx).copied().unwrap_or(false);
                        send_idx += 1;
                        if dropped {
                            continue;
                        }
                        now += Dur::from_micros(5);
                        let mut out = Vec::new();
                        let to = 1 - from;
                        let target = if to == 0 { &mut a } else { &mut b };
                        target.on_packet(now, &header, &payload, &mut out);
                        pending.extend(out.into_iter().map(|x| (to, x)));
                    }
                    Action::Deliver { msg, .. } => delivered.push(msg.data().to_vec()),
                    Action::SetTimer { token, delay } => timers.push((now + delay, from, token)),
                    Action::CancelTimer { token } => {
                        timers.retain(|&(_, ep, t)| !(ep == from && t == token));
                    }
                    Action::Complete { .. } => {}
                    Action::Error(e) => prop_assert!(false, "transport error {e}"),
                }
                continue;
            }
            if a.is_quiescent() && b.is_quiescent() {
                break;
            }
            timers.sort_by_key(|&(t, _, _)| t);
            prop_assert!(!timers.is_empty(), "stuck with no timers");
            let (at, ep, token) = timers.remove(0);
            now = now.max(at);
            let mut out = Vec::new();
            let target = if ep == 0 { &mut a } else { &mut b };
            target.on_timer(now, token, &mut out);
            pending.extend(out.into_iter().map(|x| (ep, x)));
        }
        prop_assert_eq!(delivered.len(), messages.len(), "exactly-once per message");
        for (got, want) in delivered.iter().zip(&messages) {
            prop_assert_eq!(got, want, "in-order, intact");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Request-response under duplication chaos: however many copies
    /// of each request and response the wire delivers, the server
    /// executes each transaction exactly once and the client delivers
    /// each response exactly once (late copies are ignored).
    #[test]
    fn rpc_is_at_most_once_under_duplication(
        calls in prop::collection::vec((0usize..3, 0usize..3, any::<bool>()), 1..16),
    ) {
        use nectar_proto::transport::reqresp::{ReqRespClient, ReqRespConfig, ReqRespServer};
        use nectar_proto::transport::{deliveries, sends};

        let mut client = ReqRespClient::new(CabId::new(0), ReqRespConfig::default());
        let mut server = ReqRespServer::new(CabId::new(1), ReqRespConfig::default());
        let now = Time::ZERO;
        let mut extra_copies = 0u64;
        let mut late_copies = 0u64;

        for (i, &(req_extra, resp_extra, late_dup)) in calls.iter().enumerate() {
            let req = vec![i as u8; 16 + i];
            let mut call_out = Vec::new();
            let tx = client.call(now, CabId::new(1), 5, 80, &req, &mut call_out);

            // The wire hands the server 1 + req_extra copies of the
            // request, back to back (dup while executing).
            let mut srv_out = Vec::new();
            for _ in 0..=req_extra {
                for (h, p) in sends(&call_out) {
                    server.on_packet(now, h, p, &mut srv_out);
                }
            }
            extra_copies += req_extra as u64;
            let handed = deliveries(&srv_out);
            prop_assert_eq!(handed.len(), 1, "server app sees the request exactly once");
            prop_assert_eq!(handed[0].1.data(), &req[..]);

            // Application answers; the wire duplicates the response too.
            let mut resp_out = Vec::new();
            prop_assert!(server.respond(now, CabId::new(0), tx, &req, &mut resp_out));
            let mut cli_out = Vec::new();
            for _ in 0..=resp_extra {
                for (h, p) in sends(&resp_out) {
                    client.on_packet(now, h, p, &mut cli_out);
                }
            }
            prop_assert_eq!(
                deliveries(&cli_out).len(), 1,
                "client delivers the response exactly once; late copies dropped"
            );

            // A straggler request copy after completion replays the
            // cached response without re-executing.
            if late_dup {
                let mut replay_out = Vec::new();
                for (h, p) in sends(&call_out) {
                    server.on_packet(now, h, p, &mut replay_out);
                }
                extra_copies += 1;
                late_copies += 1;
                prop_assert!(deliveries(&replay_out).is_empty(), "no re-execution");
                let replayed = sends(&replay_out);
                prop_assert_eq!(replayed.len(), 1, "cached response is replayed");
                // The client already completed tx: the replayed copy
                // must be ignored.
                let mut ignored = Vec::new();
                for (h, p) in replayed {
                    client.on_packet(now, h, p, &mut ignored);
                }
                prop_assert!(deliveries(&ignored).is_empty(), "late response ignored");
            }
        }

        let (executed, dup_requests, replays) = server.stats();
        let (issued, responses, timeouts, _) = client.stats();
        prop_assert_eq!(executed, calls.len() as u64, "exactly-once execution per unique request");
        prop_assert_eq!(issued, calls.len() as u64);
        prop_assert_eq!(responses, calls.len() as u64);
        prop_assert_eq!(timeouts, 0);
        prop_assert_eq!(dup_requests, extra_copies, "every extra copy was suppressed");
        prop_assert_eq!(replays, late_copies, "post-completion copies replay from the cache");
        prop_assert_eq!(client.outstanding(), 0);
    }
}
