//! # Nectar — a network backplane for heterogeneous multicomputers
//!
//! A comprehensive Rust reproduction of *"The Design of Nectar: A
//! Network Backplane for Heterogeneous Multicomputers"* (Arnould, Bitz,
//! Cooper, Kung, Sansom, Steenkiste — ASPLOS 1989), built as a
//! deterministic discrete-event simulation seeded with the paper's
//! published hardware constants.
//!
//! This facade crate re-exports every subsystem:
//!
//! * [`sim`] — discrete-event engine, time/bandwidth units, statistics.
//! * [`hub`] — the HUB: 16×16 crossbar, central controller, datalink
//!   command set, ready-bit flow control.
//! * [`cab`] — the CAB: DMA controller, memories, protection domains,
//!   checksum and timer units.
//! * [`kernel`] — the CAB software kernel: threads, mailboxes, timers.
//! * [`proto`] — datalink and transport protocols (datagram,
//!   byte-stream, request-response).
//! * [`core`] — system integration: topologies, routing, node model,
//!   the world simulation, and the Nectarine programming API.
//! * [`lan`] — the 1988-era Ethernet/UNIX baseline used for the
//!   paper's "order of magnitude over current LANs" comparisons.
//! * [`apps`] — the paper's motivating applications as workloads.
//!
//! # Quickstart
//!
//! ```
//! use nectar::core::{NectarSystem, SystemConfig};
//!
//! // A single-HUB cluster with 4 CABs (Fig. 2 of the paper).
//! let mut sys = NectarSystem::single_hub(4, SystemConfig::default());
//! let report = sys.measure_cab_to_cab(0, 1, 64);
//! // The paper's goal: under 30 microseconds process-to-process.
//! assert!(report.latency.as_micros_f64() < 30.0);
//! ```

pub use nectar_apps as apps;
pub use nectar_cab as cab;
pub use nectar_core as core;
pub use nectar_hub as hub;
pub use nectar_kernel as kernel;
pub use nectar_lan as lan;
pub use nectar_proto as proto;
pub use nectar_sim as sim;

/// One-stop import of the most commonly used types across all crates.
pub mod prelude {
    pub use nectar_core::prelude::*;
    pub use nectar_sim::prelude::*;
}
