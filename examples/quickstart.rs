//! Quickstart: build a single-HUB Nectar system, send messages through
//! the Nectarine API, and check the paper's headline latency goal.
//!
//! Run with: `cargo run --example quickstart`

use nectar::core::nectarine::Nectarine;
use nectar::core::{NectarSystem, SystemConfig};
use nectar::sim::time::Dur;

fn main() {
    // --- Low-level: the measurement probes -------------------------
    let mut sys = NectarSystem::single_hub(4, SystemConfig::default());
    let report = sys.measure_cab_to_cab(0, 1, 64);
    println!("CAB-to-CAB, 64 B message : {}   (paper goal: < 30 us)", report.latency);

    let rtt = sys.measure_rpc_rtt(0, 1, 64, 64);
    println!("RPC round trip, 64 B     : {rtt}");

    let tp = sys.measure_stream_throughput(2, 3, 256 * 1024, 8192);
    println!("bulk stream, 256 KiB     : {}   (fiber peak: 100 Mbit/s)", tp.rate);

    // --- High-level: the Nectarine programming interface -----------
    let mut app = Nectarine::single_hub(4, SystemConfig::default());
    let producer = app.create_task("producer", 0);
    let consumer = app.create_task("consumer", 1);

    app.send(producer, consumer, b"hello from the Warp side");
    let msg = app.receive_blocking(consumer, Dur::from_millis(5)).expect("message delivered");
    println!(
        "Nectarine: {} -> {} delivered {:?}",
        app.task_name(producer),
        app.task_name(consumer),
        std::str::from_utf8(msg.data()).unwrap()
    );

    // Hardware multicast: one packet, two receivers.
    let c2 = app.create_task("consumer-2", 2);
    let c3 = app.create_task("consumer-3", 3);
    app.multicast(producer, &[c2, c3], b"to everyone at once");
    for c in [c2, c3] {
        let m = app.receive_blocking(c, Dur::from_millis(5)).expect("multicast leg");
        println!("multicast -> {}: {} bytes", app.task_name(c), m.len());
    }
}
