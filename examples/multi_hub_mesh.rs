//! Multi-HUB Nectar systems: the paper's Fig. 4 two-dimensional mesh of
//! HUB clusters and the Fig. 7 four-HUB command walk of §4.2.
//!
//! Run with: `cargo run --example multi_hub_mesh`

use nectar::core::topology::TopologyBuilder;
use nectar::core::world::SwitchingMode;
use nectar::core::{NectarSystem, SystemConfig};
use nectar::hub::id::PortId;

fn main() {
    // --- Fig. 4: a 3x3 mesh of HUB clusters -------------------------
    let mut sys = NectarSystem::mesh(3, 3, 4, SystemConfig::default());
    println!(
        "Fig. 4 mesh: 3x3 HUB clusters, 4 CABs each = {} CABs",
        sys.world().topology().cab_count()
    );
    println!("\n  hops  latency (64 B)");
    for (dst, label) in [
        (1usize, "same cluster"),
        (4, "next cluster"),
        (16, "two clusters"),
        (35, "corner to corner"),
    ] {
        let hops = sys.world().topology().hop_count(0, dst).unwrap();
        let r = sys.measure_cab_to_cab(0, dst, 64);
        println!("  {hops:>4}  {}  ({label})", r.latency);
    }

    // --- Fig. 7: the paper's four-HUB example -----------------------
    // Paper numbering: HUB1..HUB4 = our indices 0..3.
    let mut b = TopologyBuilder::new(4, 16);
    let cab1 = b.add_cab(0, PortId::new(1)).unwrap();
    let _cab2 = b.add_cab(0, PortId::new(2)).unwrap();
    let cab3 = b.add_cab(1, PortId::new(4)).unwrap();
    let cab4 = b.add_cab(3, PortId::new(5)).unwrap();
    let cab5 = b.add_cab(2, PortId::new(6)).unwrap();
    b.link_hubs(1, PortId::new(8), 0, PortId::new(3)).unwrap();
    b.link_hubs(0, PortId::new(6), 3, PortId::new(7)).unwrap();
    b.link_hubs(3, PortId::new(3), 2, PortId::new(9)).unwrap();
    let topo = b.build().unwrap();

    println!("\nFig. 7 circuit switching (§4.2.1): CAB3 -> CAB1");
    let route = topo.route(cab3, cab1).unwrap();
    println!("  route         : {route}");
    for item in route.circuit_open_items() {
        println!("  command       : {item}");
    }

    println!("\nFig. 7 multicast (§4.2.2): CAB2 -> CAB4 and CAB5");
    let mc = topo.multicast_route(_cab2, &[cab4, cab5]).unwrap();
    for item in mc.circuit_open_items() {
        println!("  command       : {item}");
    }
    println!("  replies wanted: {}", mc.expected_replies());

    let cfg = SystemConfig { switching: SwitchingMode::CircuitCached, ..SystemConfig::default() };
    let mut fig7 = NectarSystem::custom(topo, cfg);
    let r = fig7.measure_cab_to_cab(cab3, cab1, 64);
    println!("\n  CAB3 -> CAB1 process-to-process latency: {}", r.latency);
}
