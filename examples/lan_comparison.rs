//! The §3.1 claim, live: Nectar vs a 1988 Ethernet + UNIX stack.
//!
//! Run with: `cargo run --release --example lan_comparison`

use nectar::core::node::NodeInterface;
use nectar::core::{NectarSystem, SystemConfig};
use nectar::lan::lan::{LanConfig, LanSystem};
use nectar::sim::time::Dur;
use nectar::sim::units::Bandwidth;

fn main() {
    let mut lan = LanSystem::new(4, LanConfig::default());
    let mut nectar = NectarSystem::single_hub(4, SystemConfig::default());

    println!("node-to-node latency (shared-memory interface on the Nectar side):\n");
    println!("  {:>8}  {:>14}  {:>12}  {:>8}", "message", "LAN", "Nectar", "speedup");
    for &size in &[64usize, 256, 1024, 4096] {
        let l = lan.measure_latency(0, 1, size);
        let n = nectar.measure_node_to_node(0, 1, size, NodeInterface::SharedMemory).latency;
        println!(
            "  {:>6} B  {:>14}  {:>12}  {:>7.1}x",
            size,
            format!("{l}"),
            format!("{n}"),
            l.nanos() as f64 / n.nanos().max(1) as f64
        );
    }

    println!("\ncontention under load (16 stations, 512 B frames):\n");
    println!("  {:>10}  {:>12}  {:>12}", "offered", "delivered", "mean delay");
    for &mbps in &[2u64, 8, 16] {
        let mut loaded = LanSystem::new(16, LanConfig::default());
        let r =
            loaded.offered_load_run(Bandwidth::from_mbit_per_sec(mbps), 512, Dur::from_millis(300));
        println!(
            "  {:>10}  {:>12}  {:>12}",
            format!("{}", r.offered),
            format!("{}", r.delivered),
            format!("{}", r.mean_delay)
        );
    }
    let mut big = NectarSystem::single_hub(16, SystemConfig::default());
    let agg = big.measure_ring_aggregate(64 * 1024, 8192);
    println!(
        "\n  Nectar 16-CAB crossbar, same pressure: {} aggregate — no shared-medium collapse",
        agg.rate
    );
}
