//! The paper's §7 vision application: a Warp machine streams image
//! tiles into a distributed spatial database on Sun workstations while
//! a recognition task issues latency-critical queries.
//!
//! Run with: `cargo run --release --example vision_pipeline`

use nectar::apps::vision::{run_vision, VisionConfig};
use nectar::core::SystemConfig;

fn main() {
    let cfg = VisionConfig {
        frames: 6,
        image_bytes: 256 * 1024, // 512x512 8-bit image
        tiles_per_frame: 16,
        db_nodes: 4,
        queries_per_frame: 12,
        query_bytes: 64,
    };
    println!(
        "vision pipeline: {} frames of {} KiB over {} database nodes, {} queries/frame\n",
        cfg.frames,
        cfg.image_bytes / 1024,
        cfg.db_nodes,
        cfg.queries_per_frame
    );
    let report = run_vision(&cfg, SystemConfig::default());

    println!("frame transfer (mean)    : {:.2} ms", report.frame_transfer.mean() / 1e6);
    println!("image throughput         : {}", report.image_throughput);
    println!(
        "query RTT mean / p99     : {:.1} / {:.1} us",
        report.query_rtt.mean() / 1e3,
        report.query_rtt.quantile(0.99) / 1e3
    );
    println!("sustained frame rate     : {:.1} frames/s", report.frame_rate());
    println!();
    println!(
        "the point of the backplane: bulk tiles saturate the Warp fiber while queries stay \
         interactive ({} samples, max {:.1} us)",
        report.query_rtt.len(),
        report.query_rtt.max() / 1e3
    );
}
