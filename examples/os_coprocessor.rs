//! The CAB as an operating-system co-processor (§7): distributed
//! shared virtual memory and Camelot-style transactions over Nectar.
//!
//! Run with: `cargo run --release --example os_coprocessor`

use nectar::apps::dsm::{run_dsm, DsmConfig};
use nectar::apps::transactions::{run_transactions, TxnConfig};
use nectar::core::SystemConfig;

fn main() {
    // --- Shared virtual memory ---------------------------------------
    let dsm_cfg = DsmConfig { clients: 5, pages: 32, faults: 60, ..DsmConfig::default() };
    let dsm = run_dsm(&dsm_cfg, SystemConfig::default());
    println!("distributed shared memory ({} clients, 4 KiB pages):", dsm_cfg.clients);
    println!(
        "  read faults : {} served, mean {:.0} us",
        dsm.read_fault.len(),
        dsm.read_fault.mean() / 1e3
    );
    println!(
        "  write faults: {} served, mean {:.0} us ({} multicast invalidations)",
        dsm.write_fault.len(),
        dsm.write_fault.mean() / 1e3,
        dsm.invalidations
    );

    // --- Two-phase commit --------------------------------------------
    let txn_cfg = TxnConfig { participants: 4, transactions: 30, ..TxnConfig::default() };
    let txn = run_transactions(&txn_cfg, SystemConfig::default());
    println!("\ntwo-phase commit ({} participants):", txn_cfg.participants);
    println!("  committed {} / aborted {}", txn.committed, txn.aborted);
    println!(
        "  commit latency mean {:.0} us (max {:.0} us), {:.0} committed txn/s",
        txn.commit_latency.mean() / 1e3,
        txn.commit_latency.max() / 1e3,
        txn.commit_rate()
    );
    println!(
        "\nat LAN speeds every page fault and commit round costs milliseconds of node \
         software — the §7 argument for the CAB as an OS co-processor"
    );
}
