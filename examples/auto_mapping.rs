//! Automatic task mapping (§6.3): describe an application as a task
//! graph and let the mapper place it onto a concrete Nectar
//! configuration — then measure the difference it makes.
//!
//! Run with: `cargo run --release --example auto_mapping`

use nectar::core::mapping::{
    map_annealed, map_greedy, map_round_robin, predicted_cost, Placement, TaskGraph,
};
use nectar::core::topology::Topology;
use nectar::core::world::World;
use nectar::core::SystemConfig;
use nectar::sim::time::Dur;

fn main() {
    // A speech-understanding-shaped application (§2.1): a front-end
    // pipeline of signal-processing stages with heavy flows, feeding a
    // pair of symbolic back-ends with light flows.
    let mut g = TaskGraph::new();
    let stages: Vec<usize> = (0..4).map(|i| g.add_task(format!("dsp{i}"))).collect();
    let parsers: Vec<usize> = (0..2).map(|i| g.add_task(format!("parse{i}"))).collect();
    let planner = g.add_task("planner");
    for w in stages.windows(2) {
        g.add_flow(w[0], w[1], 60);
    }
    for &p in &parsers {
        g.add_flow(stages[3], p, 10);
        g.add_flow(p, planner, 5);
    }

    // Target configuration: two HUB clusters of four CABs (Fig. 3).
    let topo = Topology::mesh2d(1, 2, 4, 16);

    println!(
        "task graph: {} tasks, {} flows; target: 2 clusters x 4 CABs\n",
        g.len(),
        g.flows().len()
    );
    println!("  {:<24} {:>10} {:>14}", "strategy", "predicted", "measured");
    for (label, placement) in [
        ("round-robin", map_round_robin(&g, &topo)),
        ("greedy (max-adjacency)", map_greedy(&g, &topo, 4)),
        ("simulated annealing", map_annealed(&g, &topo, 4, 5000, 7)),
    ] {
        let cost = predicted_cost(&g, &topo, &placement);
        let makespan = measure(&g, &topo, &placement);
        println!("  {label:<24} {cost:>10} {makespan:>14}");
    }
    println!("\npredicted cost = sum(flow weight x HUB hops); co-resident flows are free");
}

fn measure(g: &TaskGraph, topo: &Topology, placement: &Placement) -> Dur {
    let mut world = World::new(topo.clone(), SystemConfig::default());
    let t0 = world.now();
    let mut expected = 0usize;
    for &(a, b, weight) in g.flows() {
        let (ca, cb) = (placement.cab_of[a], placement.cab_of[b]);
        if ca == cb {
            continue;
        }
        for _ in 0..weight {
            world.send_datagram_now(ca, cb, 1, 2, &[0u8; 800]);
        }
        expected += weight as usize;
    }
    while world.deliveries.len() < expected {
        let Some(next) = world.next_event_time() else { break };
        world.run_until(next);
    }
    world.deliveries.last().map_or(Dur::ZERO, |d| d.at.saturating_since(t0))
}
