//! Porting hypercube codes to Nectar through the iPSC compatibility
//! library (§7): a ring exchange, a Jacobi stencil, and parallel
//! simulated annealing.
//!
//! Run with: `cargo run --release --example hypercube_port`

use nectar::apps::scientific::{run_annealing, run_jacobi, AnnealingConfig, JacobiConfig};
use nectar::core::ipsc::Ipsc;
use nectar::core::SystemConfig;
use nectar::sim::time::Dur;

fn main() {
    // --- Raw iPSC primitives ----------------------------------------
    let mut cube = Ipsc::new(8, SystemConfig::default());
    println!("iPSC cube with {} nodes (csend/crecv over Nectarine)", cube.numnodes());
    // Token ring: each node passes its id to the right.
    for node in 0..8 {
        cube.csend(42, &[node as u8], node, (node + 1) % 8);
    }
    let mut ring = Vec::new();
    for node in 0..8 {
        let got = cube.crecv(node, 42, Dur::from_millis(10)).expect("ring hop");
        ring.push(got[0]);
    }
    println!("ring exchange: node i received {ring:?}");
    cube.gsync(Dur::from_millis(50));
    println!("gsync barrier completed\n");

    // --- Jacobi stencil ---------------------------------------------
    let jac = run_jacobi(
        &JacobiConfig { nodes: 4, points_per_node: 1024, iterations: 12 },
        SystemConfig::default(),
    );
    println!(
        "Jacobi (4 nodes, 12 sweeps): halo exchange mean {:.1} us/iteration",
        jac.comm_per_iteration.mean() / 1e3
    );

    // --- Simulated annealing with ring exchange ---------------------
    let ann = run_annealing(&AnnealingConfig::default(), SystemConfig::default());
    println!(
        "annealing (4 nodes): best tour {:.3} (from {:.3}); exchange mean {:.1} us/round",
        ann.best_cost,
        ann.initial_cost,
        ann.exchange_time.mean() / 1e3
    );
}
